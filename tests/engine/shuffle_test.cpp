// Wide operations: PartitionByKey, ReduceByKey, GroupByKey, Join,
// CollectAsMap — including partitioning invariants and stage accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "engine/dataset.hpp"
#include "engine/partitioner.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions() {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

using P = std::pair<int, int>;

std::vector<P> PairsModKeys(int n, int keys) {
  std::vector<P> pairs;
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) pairs.push_back({i % keys, i});
  return pairs;
}

TEST(PartitionerTest, DeterministicAndInRange) {
  for (std::uint32_t parts : {1u, 2u, 7u, 64u}) {
    for (int key = 0; key < 1000; ++key) {
      const std::uint32_t p = PartitionOf(key, parts);
      EXPECT_LT(p, parts);
      EXPECT_EQ(p, PartitionOf(key, parts));
    }
  }
}

TEST(PartitionerTest, SequentialKeysSpreadEvenly) {
  // SNP ids are sequential; the mix must avoid pathological skew.
  const std::uint32_t parts = 8;
  std::vector<int> counts(parts, 0);
  for (int key = 0; key < 8000; ++key) ++counts[PartitionOf(key, parts)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(ShuffleTest, PartitionByKeyIsAPartition) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, PairsModKeys(100, 10), 4);
  auto shuffled = PartitionByKey(ds, 5);
  EXPECT_EQ(shuffled.NumPartitions(), 5u);
  // Same multiset of records.
  auto before = ds.Collect();
  auto after = shuffled.Collect();
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(ShuffleTest, CoPartitioning) {
  // All records of one key land in exactly one partition.
  EngineContext ctx(LocalOptions());
  auto shuffled = PartitionByKey(Parallelize(ctx, PairsModKeys(60, 6), 3), 4);
  auto per_partition = shuffled.MapPartitions(
      [](std::uint32_t idx, const std::vector<P>& records) {
        std::vector<std::pair<int, std::uint32_t>> keyed;
        for (const P& r : records) keyed.push_back({r.first, idx});
        return keyed;
      });
  std::map<int, std::uint32_t> key_home;
  for (const auto& [key, partition] : per_partition.Collect()) {
    auto [it, inserted] = key_home.emplace(key, partition);
    EXPECT_EQ(it->second, partition) << "key " << key << " split";
  }
  EXPECT_EQ(key_home.size(), 6u);
}

TEST(ShuffleTest, ReduceByKeySums) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, PairsModKeys(100, 4), 8);
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; }, 3);
  auto result = CollectAsMap(reduced);
  ASSERT_EQ(result.size(), 4u);
  // Key k holds values k, k+4, ..., k+96: 25 values.
  for (int k = 0; k < 4; ++k) {
    int expected = 0;
    for (int v = k; v < 100; v += 4) expected += v;
    EXPECT_EQ(result[k], expected) << "key " << k;
  }
}

TEST(ShuffleTest, ReduceByKeySingleKey) {
  EngineContext ctx(LocalOptions());
  std::vector<P> pairs;
  for (int i = 1; i <= 50; ++i) pairs.push_back({7, i});
  auto reduced = ReduceByKey(Parallelize(ctx, pairs, 5),
                             [](int a, int b) { return a + b; }, 2);
  auto result = CollectAsMap(reduced);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[7], 50 * 51 / 2);
}

TEST(ShuffleTest, ReduceByKeyEmptyInput) {
  EngineContext ctx(LocalOptions());
  auto reduced = ReduceByKey(Parallelize(ctx, std::vector<P>{}, 3),
                             [](int a, int b) { return a + b; }, 2);
  EXPECT_TRUE(reduced.Collect().empty());
}

TEST(ShuffleTest, GroupByKeyGathersAllValues) {
  EngineContext ctx(LocalOptions());
  auto grouped = GroupByKey(Parallelize(ctx, PairsModKeys(30, 3), 4), 2);
  auto result = CollectAsMap(grouped);
  ASSERT_EQ(result.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    std::vector<int> values = result[k];
    std::sort(values.begin(), values.end());
    std::vector<int> expected;
    for (int v = k; v < 30; v += 3) expected.push_back(v);
    EXPECT_EQ(values, expected);
  }
}

TEST(ShuffleTest, JoinMatchesKeys) {
  EngineContext ctx(LocalOptions());
  std::vector<std::pair<int, std::string>> left = {
      {1, "a"}, {2, "b"}, {3, "c"}};
  std::vector<std::pair<int, double>> right = {{2, 2.5}, {3, 3.5}, {4, 4.5}};
  auto joined = Join(Parallelize(ctx, left, 2), Parallelize(ctx, right, 3), 4);
  auto rows = joined.Collect();
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].first, 2);
  EXPECT_EQ(rows[0].second.first, "b");
  EXPECT_DOUBLE_EQ(rows[0].second.second, 2.5);
  EXPECT_EQ(rows[1].first, 3);
}

TEST(ShuffleTest, JoinWithDuplicateKeysIsCrossProductPerKey) {
  EngineContext ctx(LocalOptions());
  std::vector<P> left = {{1, 10}, {1, 11}};
  std::vector<P> right = {{1, 20}, {1, 21}, {1, 22}};
  auto joined = Join(Parallelize(ctx, left, 1), Parallelize(ctx, right, 1), 2);
  EXPECT_EQ(joined.Collect().size(), 6u);
}

TEST(ShuffleTest, JoinDisjointKeysEmpty) {
  EngineContext ctx(LocalOptions());
  std::vector<P> left = {{1, 1}};
  std::vector<P> right = {{2, 2}};
  auto joined = Join(Parallelize(ctx, left, 1), Parallelize(ctx, right, 1), 2);
  EXPECT_TRUE(joined.Collect().empty());
}

TEST(ShuffleTest, CollectAsMapLastWins) {
  EngineContext ctx(LocalOptions());
  std::vector<P> pairs = {{1, 10}, {1, 20}};
  auto map = CollectAsMap(Parallelize(ctx, pairs, 1));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map[1], 20);
}

TEST(ShuffleTest, ShuffleRecordsMapAndReduceStages) {
  EngineContext ctx(LocalOptions());
  auto shuffled = PartitionByKey(Parallelize(ctx, PairsModKeys(50, 5), 4), 3);
  shuffled.Collect("reduce-side");
  const auto stages = ctx.metrics().stages();
  ASSERT_EQ(stages.size(), 2u);  // map stage + collect stage
  EXPECT_NE(stages[0].label.find("shuffle-map"), std::string::npos);
  EXPECT_GT(stages[0].shuffle_write_bytes, 0u);
  EXPECT_GT(stages[1].shuffle_read_bytes, 0u);
}

TEST(ShuffleTest, MapStageRunsOncePerShuffle) {
  EngineContext ctx(LocalOptions());
  auto shuffled = PartitionByKey(Parallelize(ctx, PairsModKeys(50, 5), 4), 3);
  shuffled.Collect();
  shuffled.Collect();
  int map_stages = 0;
  for (const auto& stage : ctx.metrics().stages()) {
    if (stage.label.starts_with("shuffle-map")) ++map_stages;
  }
  EXPECT_EQ(map_stages, 1);  // EnsureReady is idempotent
}

TEST(ShuffleTest, NestedShufflesMaterializeDeepestFirst) {
  EngineContext ctx(LocalOptions());
  auto ds = Parallelize(ctx, PairsModKeys(100, 10), 4);
  auto once = ReduceByKey(ds, [](int a, int b) { return a + b; }, 3);
  // Re-key by value parity and reduce again: two chained shuffles.
  auto rekeyed = once.Map([](const P& r) {
    return P{r.second % 2, r.second};
  });
  auto twice = ReduceByKey(rekeyed, [](int a, int b) { return a + b; }, 2);
  auto result = CollectAsMap(twice);
  int total = 0;
  for (const auto& [k, v] : result) total += v;
  EXPECT_EQ(total, 99 * 100 / 2);  // grand total preserved through both
}

/// Sweep: ReduceByKey result is independent of partitioning choices.
class ReducerSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(ReducerSweep, PartitioningInvariant) {
  const auto [input_parts, reducers] = GetParam();
  EngineContext ctx(LocalOptions());
  auto reduced =
      ReduceByKey(Parallelize(ctx, PairsModKeys(200, 13), input_parts),
                  [](int a, int b) { return a + b; }, reducers);
  auto result = CollectAsMap(reduced);
  ASSERT_EQ(result.size(), 13u);
  for (int k = 0; k < 13; ++k) {
    int expected = 0;
    for (int v = k; v < 200; v += 13) expected += v;
    EXPECT_EQ(result[k], expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReducerSweep,
                         ::testing::Combine(::testing::Values(1u, 3u, 8u),
                                            ::testing::Values(1u, 4u, 16u)));

}  // namespace
}  // namespace ss::engine
