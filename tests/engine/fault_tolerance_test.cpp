// Failure-injection tests: task retry, retry exhaustion, cache loss on
// node failure with lineage recomputation, spill-store sabotage (corrupt
// and deleted frames must degrade to lineage recompute, bitwise equal to
// the serial oracle), and DFS failover inside tasks.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "cluster/fault_injector.hpp"
#include "engine/dataset.hpp"
#include "engine/trace.hpp"

namespace ss::engine {
namespace {

EngineContext::Options LocalOptions(int max_attempts = 4) {
  EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  options.max_task_attempts = max_attempts;
  return options;
}

TEST(FaultToleranceTest, InjectedTaskFailureIsRetried) {
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(), nullptr, &faults);
  auto ds = Parallelize(ctx, std::vector<int>{1, 2, 3, 4}, 2);
  // Fail the first two attempts of (next stage id = 1, partition 0).
  faults.FailTask(1, 0, 2);
  EXPECT_EQ(ds.Collect(), (std::vector<int>{1, 2, 3, 4}));
  ASSERT_EQ(ctx.metrics().stages().size(), 1u);
  EXPECT_EQ(ctx.metrics().stages()[0].failed_attempts, 2);
}

TEST(FaultToleranceTest, RetryExhaustionFailsJob) {
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(/*max_attempts=*/3), nullptr, &faults);
  auto ds = Parallelize(ctx, std::vector<int>{1}, 1);
  faults.FailTask(1, 0, 99);  // more failures than attempts
  EXPECT_THROW(ds.Collect(), TaskFailure);
}

TEST(FaultToleranceTest, ThrowingClosureIsRetriedAndSucceeds) {
  EngineContext ctx(LocalOptions());
  std::atomic<int> attempts{0};
  auto ds = Parallelize(ctx, std::vector<int>{5}, 1).Map([&attempts](const int& x) {
    if (attempts.fetch_add(1) < 2) throw TaskFailure("flaky");
    return x * 2;
  });
  EXPECT_EQ(ds.Collect(), std::vector<int>{10});
  EXPECT_EQ(attempts.load(), 3);
}

TEST(FaultToleranceTest, NodeFailureDropsCacheAndLineageRecovers) {
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(), nullptr, &faults);
  std::atomic<int> computes{0};
  std::vector<int> data(30);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 6).Map([&computes](const int& x) {
    computes.fetch_add(1);
    return x + 1;
  });
  ds.Cache();
  const auto first = ds.Collect();
  EXPECT_EQ(computes.load(), 30);

  // Fail node 0 after the next task completes; its cached partitions drop.
  faults.FailNodeAfterTasks(0, 1);
  const auto second = ds.Collect();
  EXPECT_EQ(second, first);

  // A third pass recomputes exactly the lost partitions, nothing else.
  const int after_second = computes.load();
  const auto third = ds.Collect();
  EXPECT_EQ(third, first);
  EXPECT_GT(computes.load(), 30);          // something was recomputed
  EXPECT_GE(computes.load(), after_second);  // and results stayed correct
  EXPECT_GT(ctx.cache().stats().dropped_by_failure, 0u);
}

TEST(FaultToleranceTest, ExplicitFailNodeDropsOnlyThatNode) {
  EngineContext ctx(LocalOptions());
  std::vector<int> data(30);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 6).Map([](const int& x) { return x; });
  ds.Cache();
  ds.Collect();
  const std::size_t before = ctx.cache().entry_count();
  EXPECT_EQ(before, 6u);
  ctx.FailNode(1);
  const std::size_t after = ctx.cache().entry_count();
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0u);  // other nodes' partitions survive
  EXPECT_EQ(ds.Collect(), ds.Collect());
}

/// Shared harness for the spill-sabotage tests: a cached dataset under a
/// budget tight enough that most partitions live in the spill tier, a
/// serial std:: oracle, and a mid-run injected spill fault. Single
/// physical thread so the fault deterministically fires after the first
/// task of the second pass — every later lookup sees the injured store.
void RunSpillSabotage(bool drop) {
  cluster::FaultInjector faults;
  EngineContext::Options options = LocalOptions();
  options.physical_threads = 1;
  options.cache_capacity_bytes = 256;  // ~1 partition resident at a time
  EngineContext ctx(options, nullptr, &faults);

  std::vector<int> data(240);
  std::iota(data.begin(), data.end(), 0);
  auto ds = Parallelize(ctx, data, 8).Map([](const int& x) {
    return x * 3 + 1;
  });
  ds.Cache();

  std::vector<int> oracle;  // serial reference
  oracle.reserve(data.size());
  for (int x : data) oracle.push_back(x * 3 + 1);

  EXPECT_EQ(ds.Collect(), oracle);
  ASSERT_GT(ctx.cache().stats().spills, 0u)
      << "budget did not force any spill; the test is vacuous";

  if (drop) {
    faults.DropSpillAfterTasks(1);
  } else {
    faults.CorruptSpillAfterTasks(1);
  }
  const std::uint64_t corrupt_before = ctx.cache().stats().spill_corrupt;
  EXPECT_EQ(ds.Collect(), oracle);  // bitwise equal despite the sabotage
  EXPECT_GT(ctx.cache().stats().spill_corrupt, corrupt_before);
  EXPECT_GE(CounterRegistry::Global().Get("fault.spill_injuries").load(), 1u);

  // The tier recovers: re-evictions rewrite fresh frames and a third pass
  // still matches.
  EXPECT_EQ(ds.Collect(), oracle);
}

TEST(FaultToleranceTest, CorruptedSpillFramesFallBackToLineage) {
  RunSpillSabotage(/*drop=*/false);
}

TEST(FaultToleranceTest, DeletedSpillFramesFallBackToLineage) {
  RunSpillSabotage(/*drop=*/true);
}

TEST(FaultToleranceTest, DfsNodeLossRecoveredByTaskRetry) {
  // Replicated DFS + task retries: killing one DFS node mid-read must not
  // fail the job.
  dfs::MiniDfs store({.num_nodes = 3, .replication = 2, .block_lines = 5});
  std::vector<std::string> lines;
  for (int i = 0; i < 30; ++i) lines.push_back(std::to_string(i));
  ASSERT_TRUE(store.WriteTextFile("/data", lines).ok());

  EngineContext ctx(LocalOptions(), &store);
  store.KillNode(1);  // all reads must fail over to surviving replicas
  auto ds = TextFile(ctx, "/data");
  EXPECT_EQ(ds.Collect(), lines);
}

TEST(FaultToleranceTest, DfsTotalLossFailsJobAfterRetries) {
  dfs::MiniDfs store({.num_nodes = 2, .replication = 1, .block_lines = 5});
  ASSERT_TRUE(store.WriteTextFile("/data", {"a", "b"}).ok());
  EngineContext ctx(LocalOptions(/*max_attempts=*/2), &store);
  auto ds = TextFile(ctx, "/data");
  store.KillNode(0);
  store.KillNode(1);
  EXPECT_THROW(ds.Collect(), TaskFailure);
}

TEST(FaultToleranceTest, ShuffleSurvivesMapTaskRetries) {
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(), nullptr, &faults);
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < 40; ++i) pairs.push_back({i % 4, i});
  auto ds = Parallelize(ctx, pairs, 4);
  faults.FailTask(1, 2, 1);  // one map-stage task fails once
  auto reduced = ReduceByKey(ds, [](int a, int b) { return a + b; }, 2);
  auto result = CollectAsMap(reduced);
  int total = 0;
  for (const auto& [k, v] : result) total += v;
  EXPECT_EQ(total, 39 * 40 / 2);
}

TEST(FaultToleranceTest, RetriedTaskReproducesSameRandomness) {
  // Rng derived from TaskContext must not depend on the attempt number:
  // a retried Sample task yields the same subset.
  cluster::FaultInjector faults;
  EngineContext ctx(LocalOptions(), nullptr, &faults);
  std::vector<int> data(200);
  std::iota(data.begin(), data.end(), 0);

  auto sampled = Parallelize(ctx, data, 2).Sample(0.5, /*salt=*/9);
  const auto clean = sampled.Collect();

  cluster::FaultInjector faults2;
  EngineContext ctx2(LocalOptions(), nullptr, &faults2);
  auto sampled2 = Parallelize(ctx2, data, 2).Sample(0.5, /*salt=*/9);
  faults2.FailTask(1, 0, 1);
  faults2.FailTask(1, 1, 2);
  const auto with_retries = sampled2.Collect();
  EXPECT_EQ(clean, with_retries);
}

}  // namespace
}  // namespace ss::engine
