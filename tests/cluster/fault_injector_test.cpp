#include "cluster/fault_injector.hpp"

#include <gtest/gtest.h>

namespace ss::cluster {
namespace {

TEST(FaultInjectorTest, NodeFailureFiresAfterCountdown) {
  FaultInjector faults;
  int failed_node = -1;
  faults.SetOnNodeFailure([&](int node) { failed_node = node; });
  faults.FailNodeAfterTasks(2, 3);

  faults.OnTaskCompleted();
  faults.OnTaskCompleted();
  EXPECT_EQ(failed_node, -1);
  EXPECT_FALSE(faults.HasFired(2));
  faults.OnTaskCompleted();
  EXPECT_EQ(failed_node, 2);
  EXPECT_TRUE(faults.HasFired(2));
}

TEST(FaultInjectorTest, FiresOnlyOnce) {
  FaultInjector faults;
  int fire_count = 0;
  faults.SetOnNodeFailure([&](int) { ++fire_count; });
  faults.FailNodeAfterTasks(0, 1);
  for (int i = 0; i < 5; ++i) faults.OnTaskCompleted();
  EXPECT_EQ(fire_count, 1);
}

TEST(FaultInjectorTest, MultipleArmedFailures) {
  FaultInjector faults;
  std::vector<int> fired;
  faults.SetOnNodeFailure([&](int node) { fired.push_back(node); });
  faults.FailNodeAfterTasks(1, 1);
  faults.FailNodeAfterTasks(2, 2);
  faults.OnTaskCompleted();
  faults.OnTaskCompleted();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(FaultInjectorTest, TaskFailureConsumesArmedCount) {
  FaultInjector faults;
  faults.FailTask(7, 3, 2);
  EXPECT_TRUE(faults.ShouldFailTask(7, 3));
  EXPECT_TRUE(faults.ShouldFailTask(7, 3));
  EXPECT_FALSE(faults.ShouldFailTask(7, 3));  // exhausted
}

TEST(FaultInjectorTest, TaskFailureMatchesExactTask) {
  FaultInjector faults;
  faults.FailTask(7, 3, 1);
  EXPECT_FALSE(faults.ShouldFailTask(7, 4));
  EXPECT_FALSE(faults.ShouldFailTask(8, 3));
  EXPECT_TRUE(faults.ShouldFailTask(7, 3));
}

TEST(FaultInjectorTest, CallbackRunsOutsideLock) {
  // Re-entrancy: the callback may arm new failures without deadlocking.
  FaultInjector faults;
  bool rearmed = false;
  faults.SetOnNodeFailure([&](int node) {
    if (!rearmed) {
      rearmed = true;
      faults.FailNodeAfterTasks(node + 1, 1);
    }
  });
  faults.FailNodeAfterTasks(0, 1);
  faults.OnTaskCompleted();  // fires node 0, arms node 1
  EXPECT_TRUE(rearmed);
  faults.OnTaskCompleted();  // fires node 1
  EXPECT_TRUE(faults.HasFired(1));
}

TEST(FaultInjectorTest, ResetClearsEverything) {
  FaultInjector faults;
  faults.FailNodeAfterTasks(0, 1);
  faults.FailTask(1, 1, 1);
  faults.Reset();
  faults.OnTaskCompleted();
  EXPECT_FALSE(faults.HasFired(0));
  EXPECT_FALSE(faults.ShouldFailTask(1, 1));
}

}  // namespace
}  // namespace ss::cluster
