#include "cluster/virtual_scheduler.hpp"

#include <gtest/gtest.h>

namespace ss::cluster {
namespace {

/// A cost model with all overheads zeroed, isolating list scheduling.
CostModel PureCompute() {
  CostModel model;
  model.task_launch_overhead_s = 0.0;
  model.stage_overhead_s = 0.0;
  model.job_overhead_s = 0.0;
  model.serialization_s_per_byte = 0.0;
  model.network_bandwidth_bytes_per_s = 1e18;
  return model;
}

ClusterTopology Slots(int n) {
  ClusterTopology t;
  t.instance = M3_2xlarge();
  t.num_nodes = 1;
  t.executors_per_node = 1;
  t.cores_per_executor = n;
  t.memory_per_executor_gib = 1.0;
  return t;
}

TEST(VirtualSchedulerTest, SingleSlotSumsTasks) {
  VirtualScheduler sched(Slots(1), PureCompute());
  StageProfile stage;
  stage.task_compute_s = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sched.SimulateStage(stage), 6.0);
}

TEST(VirtualSchedulerTest, PerfectParallelismWithEnoughSlots) {
  VirtualScheduler sched(Slots(3), PureCompute());
  StageProfile stage;
  stage.task_compute_s = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(sched.SimulateStage(stage), 3.0);  // longest task
}

TEST(VirtualSchedulerTest, GreedyListScheduling) {
  // Tasks 4,3,2,1 on 2 slots in order: slot A gets 4, slot B gets 3 then 1
  // (free at 3), A would be free at 4; 2 goes to B at 3 -> B ends 5... let's
  // verify the earliest-available rule precisely: order 4,3,2,1.
  //   t=0: A<-4 (free 4), B<-3 (free 3)
  //   next: 2 -> B at 3 (free 5)
  //   next: 1 -> A at 4 (free 5)
  // makespan 5.
  VirtualScheduler sched(Slots(2), PureCompute());
  StageProfile stage;
  stage.task_compute_s = {4.0, 3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(sched.SimulateStage(stage), 5.0);
}

TEST(VirtualSchedulerTest, EmptyStageCostsOnlyOverhead) {
  CostModel model = PureCompute();
  model.stage_overhead_s = 0.25;
  VirtualScheduler sched(Slots(4), model);
  EXPECT_DOUBLE_EQ(sched.SimulateStage(StageProfile{}), 0.25);
}

TEST(VirtualSchedulerTest, TaskLaunchOverheadPerTask) {
  CostModel model = PureCompute();
  model.task_launch_overhead_s = 0.5;
  VirtualScheduler sched(Slots(1), model);
  StageProfile stage;
  stage.task_compute_s = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(sched.SimulateStage(stage), 3.0);  // 2 x (1 + 0.5)
}

TEST(VirtualSchedulerTest, ShuffleBytesChargeTransferTime) {
  CostModel model = PureCompute();
  model.network_bandwidth_bytes_per_s = 100.0;  // 100 B/s
  VirtualScheduler sched(Slots(1), model);
  StageProfile stage;
  stage.task_compute_s = {1.0};
  stage.shuffle_read_bytes = 200;  // 2 s of transfer
  EXPECT_DOUBLE_EQ(sched.SimulateStage(stage), 3.0);
}

TEST(VirtualSchedulerTest, MoreSlotsNeverSlower) {
  CostModel model;  // default, with realistic overheads
  StageProfile stage;
  for (int i = 0; i < 100; ++i) {
    stage.task_compute_s.push_back(0.1 + 0.01 * (i % 7));
  }
  JobProfile job;
  job.stages.push_back(stage);
  double previous = 1e100;
  for (int slots : {1, 2, 4, 8, 16, 64}) {
    VirtualScheduler sched(Slots(slots), model);
    const double total = sched.Simulate(job).total_s;
    EXPECT_LE(total, previous + 1e-9) << slots << " slots";
    previous = total;
  }
}

TEST(VirtualSchedulerTest, JobSumsStagesPlusJobOverhead) {
  CostModel model = PureCompute();
  model.job_overhead_s = 10.0;
  model.stage_overhead_s = 1.0;
  VirtualScheduler sched(Slots(1), model);
  JobProfile job;
  StageProfile s1;
  s1.task_compute_s = {2.0};
  StageProfile s2;
  s2.task_compute_s = {3.0};
  job.stages = {s1, s2};
  const MakespanReport report = sched.Simulate(job);
  EXPECT_DOUBLE_EQ(report.total_s, 10.0 + (2.0 + 1.0) + (3.0 + 1.0));
  ASSERT_EQ(report.stage_s.size(), 2u);
  EXPECT_DOUBLE_EQ(report.stage_s[0], 3.0);
  EXPECT_DOUBLE_EQ(report.compute_s, 5.0);
  EXPECT_EQ(report.slots, 1);
}

TEST(VirtualSchedulerTest, StrongScalingShapeMatchesFig6) {
  // 1000 equal tasks: 18 nodes must beat 12 must beat 6, with speedup
  // approaching the slot ratio for compute-dominated stages.
  CostModel model;
  StageProfile stage;
  stage.task_compute_s.assign(1000, 1.0);
  JobProfile job;
  job.stages.push_back(stage);
  const double t6 = VirtualScheduler(EmrCluster(6), model).Simulate(job).total_s;
  const double t12 = VirtualScheduler(EmrCluster(12), model).Simulate(job).total_s;
  const double t18 = VirtualScheduler(EmrCluster(18), model).Simulate(job).total_s;
  EXPECT_GT(t6, t12);
  EXPECT_GT(t12, t18);
  EXPECT_NEAR(t6 / t18, 3.0, 0.5);
}

}  // namespace
}  // namespace ss::cluster
