// Straggler model + speculative execution in the virtual scheduler.
#include <gtest/gtest.h>

#include "cluster/virtual_scheduler.hpp"

namespace ss::cluster {
namespace {

CostModel PureCompute(double straggler_p = 0.0, double slowdown = 8.0) {
  CostModel model;
  model.task_launch_overhead_s = 0.0;
  model.stage_overhead_s = 0.0;
  model.job_overhead_s = 0.0;
  model.serialization_s_per_byte = 0.0;
  model.network_bandwidth_bytes_per_s = 1e18;
  model.straggler_probability = straggler_p;
  model.straggler_slowdown = slowdown;
  return model;
}

ClusterTopology Slots(int n) {
  ClusterTopology t;
  t.num_nodes = 1;
  t.executors_per_node = 1;
  t.cores_per_executor = n;
  t.memory_per_executor_gib = 1.0;
  return t;
}

StageProfile UniformStage(int tasks, double seconds) {
  StageProfile stage;
  stage.task_compute_s.assign(static_cast<std::size_t>(tasks), seconds);
  return stage;
}

TEST(SpeculationTest, NoStragglersMeansSpeculationIsFree) {
  const StageProfile stage = UniformStage(64, 1.0);
  const VirtualScheduler plain(Slots(16), PureCompute());
  const VirtualScheduler speculative(Slots(16), PureCompute(), true);
  EXPECT_DOUBLE_EQ(plain.SimulateStage(stage),
                   speculative.SimulateStage(stage));
}

TEST(SpeculationTest, StragglersInflateMakespan) {
  const StageProfile stage = UniformStage(64, 1.0);
  const double clean =
      VirtualScheduler(Slots(16), PureCompute()).SimulateStage(stage);
  const double straggly =
      VirtualScheduler(Slots(16), PureCompute(0.05, 10.0)).SimulateStage(stage);
  EXPECT_GT(straggly, clean * 2.0);  // a 10x straggler in the last wave
}

TEST(SpeculationTest, SpeculationRecoversMostOfTheLoss) {
  const StageProfile stage = UniformStage(64, 1.0);
  const double clean =
      VirtualScheduler(Slots(16), PureCompute()).SimulateStage(stage);
  const double straggly =
      VirtualScheduler(Slots(16), PureCompute(0.05, 10.0)).SimulateStage(stage);
  const double speculated =
      VirtualScheduler(Slots(16), PureCompute(0.05, 10.0), true)
          .SimulateStage(stage);
  EXPECT_LT(speculated, straggly);
  // With a backup launched one nominal-duration late, the worst case is
  // ~2x nominal for the affected wave plus queueing: well under half the
  // unspeculated 10x tail.
  EXPECT_LT(speculated, clean + 2.5);
  EXPECT_GE(speculated, clean);  // speculation is not time travel
}

TEST(SpeculationTest, DeterministicInSeed) {
  const StageProfile stage = UniformStage(40, 0.5);
  const VirtualScheduler a(Slots(8), PureCompute(0.1, 6.0), true, 42);
  const VirtualScheduler b(Slots(8), PureCompute(0.1, 6.0), true, 42);
  EXPECT_DOUBLE_EQ(a.SimulateStage(stage, 3), b.SimulateStage(stage, 3));
}

TEST(SpeculationTest, StageSaltDecorrelates) {
  const StageProfile stage = UniformStage(40, 0.5);
  const VirtualScheduler sched(Slots(8), PureCompute(0.1, 6.0), false, 42);
  // Different salts draw different straggler patterns (almost surely
  // different makespans for this configuration).
  EXPECT_NE(sched.SimulateStage(stage, 0), sched.SimulateStage(stage, 12));
}

TEST(SpeculationTest, WholeJobAccountsStagesIndependently) {
  JobProfile job;
  job.stages.push_back(UniformStage(32, 1.0));
  job.stages.push_back(UniformStage(32, 1.0));
  const MakespanReport plain =
      VirtualScheduler(Slots(16), PureCompute(0.08, 12.0)).Simulate(job);
  const MakespanReport speculated =
      VirtualScheduler(Slots(16), PureCompute(0.08, 12.0), true).Simulate(job);
  EXPECT_LT(speculated.total_s, plain.total_s);
  EXPECT_EQ(plain.stage_s.size(), 2u);
}

TEST(SpeculationTest, ProbabilityOneSlowsEveryTask) {
  const StageProfile stage = UniformStage(4, 1.0);
  const double all_straggle =
      VirtualScheduler(Slots(4), PureCompute(1.0, 5.0)).SimulateStage(stage);
  EXPECT_DOUBLE_EQ(all_straggle, 5.0);
}

}  // namespace
}  // namespace ss::cluster
