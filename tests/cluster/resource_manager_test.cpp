#include "cluster/resource_manager.hpp"

#include <gtest/gtest.h>

namespace ss::cluster {
namespace {

ResourceManager MakeRm(int nodes,
                       ResourceCalculator calc = ResourceCalculator::kMemoryOnly) {
  return ResourceManager(M3_2xlarge(), nodes, calc, /*reserved=*/6.0);
}

TEST(ResourceManagerTest, AllocatesWithinCapacity) {
  ResourceManager rm = MakeRm(2);  // 24 GiB usable per node
  auto c = rm.Allocate({.memory_gib = 10.0, .vcores = 4});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(rm.LiveContainerCount(), 1);
  EXPECT_DOUBLE_EQ(rm.FreeMemoryGib(c.value().node), 14.0);
}

TEST(ResourceManagerTest, RejectsInvalidShape) {
  ResourceManager rm = MakeRm(1);
  EXPECT_FALSE(rm.Allocate({.memory_gib = 0.0, .vcores = 1}).ok());
  EXPECT_FALSE(rm.Allocate({.memory_gib = 1.0, .vcores = 0}).ok());
}

TEST(ResourceManagerTest, ExhaustsMemory) {
  ResourceManager rm = MakeRm(1);
  ASSERT_TRUE(rm.Allocate({.memory_gib = 20.0, .vcores = 1}).ok());
  EXPECT_EQ(rm.Allocate({.memory_gib = 10.0, .vcores = 1}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ResourceManagerTest, MemoryOnlyCalculatorIgnoresVcores) {
  ResourceManager rm = MakeRm(1, ResourceCalculator::kMemoryOnly);
  // 3 x 6 vcores = 18 > 8 vCPUs but only 18 GiB < 24 GiB: all granted.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(rm.Allocate({.memory_gib = 6.0, .vcores = 6}).ok());
  }
}

TEST(ResourceManagerTest, DominantCalculatorEnforcesVcores) {
  ResourceManager rm = MakeRm(1, ResourceCalculator::kDominant);
  ASSERT_TRUE(rm.Allocate({.memory_gib = 6.0, .vcores = 6}).ok());
  EXPECT_EQ(rm.Allocate({.memory_gib = 6.0, .vcores = 6}).status().code(),
            StatusCode::kResourceExhausted);  // only 2 vcores left
}

TEST(ResourceManagerTest, SpreadsAcrossNodes) {
  ResourceManager rm = MakeRm(3);
  std::vector<int> per_node(3, 0);
  for (int i = 0; i < 6; ++i) {
    ++per_node[rm.Allocate({.memory_gib = 10.0, .vcores = 2}).value().node];
  }
  EXPECT_EQ(per_node, (std::vector<int>{2, 2, 2}));
}

TEST(ResourceManagerTest, AllocateManyIsAllOrNothing) {
  ResourceManager rm = MakeRm(2);  // 48 GiB total usable
  // 5 x 10 GiB exceeds capacity (only 2 fit per node): must grant none.
  EXPECT_FALSE(rm.AllocateMany({.memory_gib = 10.0, .vcores = 1}, 5).ok());
  EXPECT_EQ(rm.LiveContainerCount(), 0);
  // 4 fit exactly.
  EXPECT_TRUE(rm.AllocateMany({.memory_gib = 10.0, .vcores = 1}, 4).ok());
  EXPECT_EQ(rm.LiveContainerCount(), 4);
}

TEST(ResourceManagerTest, ReleaseReturnsCapacity) {
  ResourceManager rm = MakeRm(1);
  auto c = rm.Allocate({.memory_gib = 20.0, .vcores = 2}).value();
  rm.Release(c.id);
  EXPECT_EQ(rm.LiveContainerCount(), 0);
  EXPECT_DOUBLE_EQ(rm.FreeMemoryGib(0), 24.0);
  rm.Release(c.id);  // idempotent
}

TEST(ResourceManagerTest, ReleaseAll) {
  ResourceManager rm = MakeRm(2);
  ASSERT_TRUE(rm.AllocateMany({.memory_gib = 5.0, .vcores = 1}, 6).ok());
  rm.ReleaseAll();
  EXPECT_EQ(rm.LiveContainerCount(), 0);
  EXPECT_DOUBLE_EQ(rm.FreeMemoryGib(0), 24.0);
  EXPECT_DOUBLE_EQ(rm.FreeMemoryGib(1), 24.0);
}

TEST(ResourceManagerTest, DecommissionKillsContainersAndCapacity) {
  ResourceManager rm = MakeRm(2);
  auto granted = rm.AllocateMany({.memory_gib = 10.0, .vcores = 1}, 4).value();
  const int victim = granted[0].node;
  const int lost = rm.DecommissionNode(victim);
  EXPECT_EQ(lost, 2);
  EXPECT_EQ(rm.LiveContainerCount(), 2);
  EXPECT_FALSE(rm.Allocate({.memory_gib = 10.0, .vcores = 1}).ok());
}

TEST(ResourceManagerTest, RecommissionRestoresCapacity) {
  ResourceManager rm = MakeRm(1);
  rm.DecommissionNode(0);
  EXPECT_FALSE(rm.Allocate({.memory_gib = 1.0, .vcores = 1}).ok());
  rm.RecommissionNode(0);
  EXPECT_TRUE(rm.Allocate({.memory_gib = 1.0, .vcores = 1}).ok());
}

TEST(ResourceManagerTest, PaperTableVIIIConfigsPlaceable) {
  // All three Table VIII configurations must be grantable on 36 nodes
  // under the memory-only calculator.
  struct Config { int containers; double mem; int cores; };
  for (const Config& config : std::initializer_list<Config>{
           {42, 10.0, 6}, {84, 5.0, 3}, {126, 3.0, 2}}) {
    ResourceManager rm = MakeRm(36);
    EXPECT_TRUE(rm.AllocateMany({.memory_gib = config.mem,
                                 .vcores = config.cores},
                                config.containers)
                    .ok())
        << config.containers << " containers";
  }
}

}  // namespace
}  // namespace ss::cluster
