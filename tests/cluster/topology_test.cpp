#include "cluster/topology.hpp"

#include <gtest/gtest.h>

namespace ss::cluster {
namespace {

TEST(InstanceTypeTest, M3MatchesPaperTableI) {
  const InstanceType m3 = M3_2xlarge();
  EXPECT_EQ(m3.name, "m3.2xlarge");
  EXPECT_EQ(m3.vcpus, 8);
  EXPECT_DOUBLE_EQ(m3.memory_gib, 30.0);
  EXPECT_DOUBLE_EQ(m3.storage_gb, 160.0);  // 2 x 80 GB
}

TEST(TopologyTest, SlotArithmetic) {
  ClusterTopology t;
  t.num_nodes = 6;
  t.executors_per_node = 2;
  t.cores_per_executor = 3;
  t.memory_per_executor_gib = 10.0;
  EXPECT_EQ(t.TotalExecutors(), 12);
  EXPECT_EQ(t.TotalSlots(), 36);
  EXPECT_DOUBLE_EQ(t.TotalExecutorMemoryGib(), 120.0);
}

TEST(TopologyTest, EmrClusterPreset) {
  const ClusterTopology t = EmrCluster(18);
  EXPECT_EQ(t.num_nodes, 18);
  EXPECT_EQ(t.TotalExecutors(), 18);
  EXPECT_EQ(t.TotalSlots(), 18 * 8);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TopologyTest, ValidateRejectsNonPositiveCounts) {
  ClusterTopology t = EmrCluster(1);
  t.num_nodes = 0;
  EXPECT_EQ(t.Validate().code(), StatusCode::kInvalidArgument);
  t = EmrCluster(1);
  t.cores_per_executor = 0;
  EXPECT_EQ(t.Validate().code(), StatusCode::kInvalidArgument);
  t = EmrCluster(1);
  t.memory_per_executor_gib = 0.0;
  EXPECT_EQ(t.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TopologyTest, ValidateRejectsMemoryOversubscription) {
  ClusterTopology t = EmrCluster(2);
  t.executors_per_node = 2;
  t.memory_per_executor_gib = 20.0;  // 40 > 30 GiB
  EXPECT_EQ(t.Validate().code(), StatusCode::kResourceExhausted);
}

TEST(TopologyTest, VcoreEnforcementIsOptional) {
  // Table VIII's 2 x 6-core containers per 8-vCPU node: legal under YARN's
  // DefaultResourceCalculator, illegal under DominantResourceCalculator.
  ClusterTopology t = EmrCluster(36);
  t.executors_per_node = 2;
  t.cores_per_executor = 6;
  t.memory_per_executor_gib = 10.0;
  EXPECT_TRUE(t.Validate().ok());
  t.enforce_vcores = true;
  EXPECT_EQ(t.Validate().code(), StatusCode::kResourceExhausted);
}

TEST(TopologyTest, ContainerConfigRoundsUpExecutorsPerNode) {
  // 42 containers over 36 nodes -> 2 per node (ceil).
  const ClusterTopology t = ContainerConfig(36, 42, 10.0, 6);
  EXPECT_EQ(t.executors_per_node, 2);
  EXPECT_EQ(t.cores_per_executor, 6);
}

TEST(TopologyTest, ToStringMentionsShape) {
  const std::string s = EmrCluster(6).ToString();
  EXPECT_NE(s.find("6x m3.2xlarge"), std::string::npos);
  EXPECT_NE(s.find("48 slots"), std::string::npos);
}

}  // namespace
}  // namespace ss::cluster
