#include "stats/distributions_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ss::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-5);
  EXPECT_NEAR(NormalCdf(3.0), 0.998650, 1e-5);
}

TEST(NormalCdfTest, Symmetry) {
  for (double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-12);
  }
}

TEST(NormalTwoSidedTest, KnownValues) {
  EXPECT_NEAR(NormalTwoSidedP(1.959964), 0.05, 1e-5);
  EXPECT_NEAR(NormalTwoSidedP(-1.959964), 0.05, 1e-5);
  EXPECT_NEAR(NormalTwoSidedP(0.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ComplementaryPair) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquareSfTest, KnownQuantilesDf1) {
  // P(χ²(1) >= 3.841459) = 0.05; >= 6.634897 = 0.01.
  EXPECT_NEAR(ChiSquareSf(3.841459, 1.0), 0.05, 1e-5);
  EXPECT_NEAR(ChiSquareSf(6.634897, 1.0), 0.01, 1e-5);
}

TEST(ChiSquareSfTest, KnownQuantilesHigherDf) {
  EXPECT_NEAR(ChiSquareSf(5.991465, 2.0), 0.05, 1e-5);
  EXPECT_NEAR(ChiSquareSf(18.307038, 10.0), 0.05, 1e-5);
}

TEST(ChiSquareSfTest, Df1MatchesNormalTail) {
  // P(χ²(1) >= z²) == P(|Z| >= z).
  for (double z : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(ChiSquareSf(z * z, 1.0), NormalTwoSidedP(z), 1e-10);
  }
}

TEST(ChiSquareSfTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double p = ChiSquareSf(x, 3.0);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST(ScoreTestPValueTest, StandardizedScore) {
  // score=2, variance=1 -> z=2 -> p = P(χ²(1) >= 4) ≈ 0.0455.
  EXPECT_NEAR(ScoreTestPValue(2.0, 1.0), 0.04550026, 1e-6);
}

TEST(ScoreTestPValueTest, DegenerateVarianceReturnsOne) {
  EXPECT_DOUBLE_EQ(ScoreTestPValue(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ScoreTestPValue(5.0, -1.0), 1.0);
}

TEST(ScoreTestPValueTest, ZeroScoreIsOne) {
  EXPECT_DOUBLE_EQ(ScoreTestPValue(0.0, 10.0), 1.0);
}

}  // namespace
}  // namespace ss::stats
