#include "stats/distributions_math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ss::stats {
namespace {

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(NormalCdf(-1.959964), 0.025, 1e-5);
  EXPECT_NEAR(NormalCdf(3.0), 0.998650, 1e-5);
}

TEST(NormalCdfTest, Symmetry) {
  for (double x : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(NormalCdf(x) + NormalCdf(-x), 1.0, 1e-12);
  }
}

TEST(NormalTwoSidedTest, KnownValues) {
  EXPECT_NEAR(NormalTwoSidedP(1.959964), 0.05, 1e-5);
  EXPECT_NEAR(NormalTwoSidedP(-1.959964), 0.05, 1e-5);
  EXPECT_NEAR(NormalTwoSidedP(0.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ComplementaryPair) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - e^-x.
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ChiSquareSfTest, KnownQuantilesDf1) {
  // P(χ²(1) >= 3.841459) = 0.05; >= 6.634897 = 0.01.
  EXPECT_NEAR(ChiSquareSf(3.841459, 1.0), 0.05, 1e-5);
  EXPECT_NEAR(ChiSquareSf(6.634897, 1.0), 0.01, 1e-5);
}

TEST(ChiSquareSfTest, KnownQuantilesHigherDf) {
  EXPECT_NEAR(ChiSquareSf(5.991465, 2.0), 0.05, 1e-5);
  EXPECT_NEAR(ChiSquareSf(18.307038, 10.0), 0.05, 1e-5);
}

TEST(ChiSquareSfTest, Df1MatchesNormalTail) {
  // P(χ²(1) >= z²) == P(|Z| >= z).
  for (double z : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NEAR(ChiSquareSf(z * z, 1.0), NormalTwoSidedP(z), 1e-10);
  }
}

TEST(ChiSquareSfTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.0; x < 20.0; x += 0.5) {
    const double p = ChiSquareSf(x, 3.0);
    EXPECT_LE(p, prev + 1e-15);
    prev = p;
  }
}

TEST(ScoreTestPValueTest, StandardizedScore) {
  // score=2, variance=1 -> z=2 -> p = P(χ²(1) >= 4) ≈ 0.0455.
  EXPECT_NEAR(ScoreTestPValue(2.0, 1.0), 0.04550026, 1e-6);
}

TEST(ScoreTestPValueTest, DegenerateVarianceReturnsOne) {
  EXPECT_DOUBLE_EQ(ScoreTestPValue(5.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ScoreTestPValue(5.0, -1.0), 1.0);
}

TEST(ScoreTestPValueTest, ZeroScoreIsOne) {
  EXPECT_DOUBLE_EQ(ScoreTestPValue(0.0, 10.0), 1.0);
}

// -----------------------------------------------------------------------
// Upper-tail machinery for the adaptive p-value engine: NormalSf,
// NormalSfLog, ChiSquareSfNoncentral (property + golden tests).
// -----------------------------------------------------------------------

TEST(NormalSfTest, ComplementsCdf) {
  for (double x : {-3.0, -0.5, 0.0, 0.7, 2.4, 5.0}) {
    EXPECT_NEAR(NormalSf(x) + NormalCdf(x), 1.0, 1e-14) << "x=" << x;
    // Symmetry: Φ̄(-x) = Φ(x).
    EXPECT_NEAR(NormalSf(-x), NormalCdf(x), 1e-15) << "x=" << x;
  }
}

TEST(NormalSfTest, DeepTailGolden) {
  // Φ̄(6) = 9.865876450377e-10 — full relative accuracy via erfc, far
  // past where 1 - NormalCdf(x) would have cancelled to garbage.
  EXPECT_NEAR(NormalSf(6.0) / 9.865876450377e-10, 1.0, 1e-10);
  // Φ̄(10) = 7.619853024160527e-24.
  EXPECT_NEAR(NormalSf(10.0) / 7.619853024160527e-24, 1.0, 1e-10);
}

TEST(NormalSfTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = -8.0; x <= 8.0; x += 0.25) {
    const double p = NormalSf(x);
    EXPECT_LT(p, prev) << "x=" << x;
    prev = p;
  }
}

TEST(NormalSfLogTest, AgreesWithDirectLogWhereSfIsRepresentable) {
  for (double x : {-5.0, 0.0, 1.0, 10.0, 20.0, 35.0}) {
    EXPECT_NEAR(NormalSfLog(x), std::log(NormalSf(x)),
                1e-12 * std::fabs(std::log(NormalSf(x))) + 1e-12)
        << "x=" << x;
  }
}

TEST(NormalSfLogTest, FiniteAndOrderedPastUnderflow) {
  // NormalSf underflows to 0 near x = 38.5; the log-space tail must stay
  // finite and strictly decreasing straight through and far beyond.
  double prev = NormalSfLog(30.0);
  for (double x = 31.0; x <= 200.0; x += 1.0) {
    const double log_p = NormalSfLog(x);
    EXPECT_TRUE(std::isfinite(log_p)) << "x=" << x;
    EXPECT_LT(log_p, prev) << "x=" << x;
    prev = log_p;
  }
}

TEST(NormalSfLogTest, DeepTailWithinMillsRatioBounds) {
  // φ(x)(1/x − 1/x³) < Φ̄(x) < φ(x)/x for x > 0 — sandwich the
  // asymptotic branch between the classic log-space Mills bounds.
  for (double x : {40.0, 80.0, 150.0, 300.0}) {
    const double log_phi =
        -0.5 * x * x - 0.5 * std::log(2.0 * M_PI);
    const double upper = log_phi - std::log(x);
    const double lower = log_phi + std::log(1.0 / x - 1.0 / (x * x * x));
    const double log_p = NormalSfLog(x);
    EXPECT_GT(log_p, lower) << "x=" << x;
    EXPECT_LT(log_p, upper) << "x=" << x;
  }
}

TEST(ChiSquareSfTest, Df2IsExactExponential) {
  // SF(x; 2) = e^{-x/2} exactly — including a 1e-10 deep-tail golden.
  for (double x : {0.5, 2.0, 10.0, 46.0517018598809}) {
    EXPECT_NEAR(ChiSquareSf(x, 2.0) / std::exp(-0.5 * x), 1.0, 1e-10)
        << "x=" << x;
  }
  EXPECT_NEAR(ChiSquareSf(46.0517018598809, 2.0) / 1e-10, 1.0, 1e-8);
}

TEST(ChiSquareSfTest, Df1MatchesNormalTailDeep) {
  // SF(x; 1) = 2 Φ̄(√x), into the ~1e-10 tail.
  for (double x : {1.0, 9.0, 25.0, 36.0}) {
    const double exact = 2.0 * NormalSf(std::sqrt(x));
    EXPECT_NEAR(ChiSquareSf(x, 1.0) / exact, 1.0, 1e-9) << "x=" << x;
  }
}

TEST(NoncentralChiSquareTest, ZeroNcpReducesToCentral) {
  for (double df : {1.0, 4.0, 9.5}) {
    for (double x : {0.5, 3.0, 12.0}) {
      EXPECT_DOUBLE_EQ(ChiSquareSfNoncentral(x, df, 0.0),
                       ChiSquareSf(x, df));
    }
  }
}

TEST(NoncentralChiSquareTest, Df1MatchesShiftedNormalIdentity) {
  // χ²₁(δ) = (Z + √δ)², so SF(x) = Φ̄(√x − √δ) + Φ̄(√x + √δ).
  for (double ncp : {0.5, 2.0, 8.0}) {
    for (double x : {0.2, 1.0, 5.0, 20.0, 40.0}) {
      const double root_x = std::sqrt(x);
      const double root_d = std::sqrt(ncp);
      const double exact =
          NormalSf(root_x - root_d) + NormalSf(root_x + root_d);
      EXPECT_NEAR(ChiSquareSfNoncentral(x, 1.0, ncp), exact,
                  1e-12 + 1e-10 * exact)
          << "x=" << x << " ncp=" << ncp;
    }
  }
}

TEST(NoncentralChiSquareTest, MonotoneInXAndNcp) {
  // SF decreases in x and increases in the noncentrality.
  double prev = 1.0;
  for (double x = 0.5; x < 40.0; x += 0.5) {
    const double p = ChiSquareSfNoncentral(x, 3.0, 4.0);
    EXPECT_LE(p, prev + 1e-14) << "x=" << x;
    prev = p;
  }
  prev = 0.0;
  for (double ncp = 0.0; ncp < 30.0; ncp += 1.0) {
    const double p = ChiSquareSfNoncentral(10.0, 3.0, ncp);
    EXPECT_GE(p, prev - 1e-14) << "ncp=" << ncp;
    prev = p;
  }
}

TEST(NoncentralChiSquareTest, BoundsAndEdges) {
  EXPECT_DOUBLE_EQ(ChiSquareSfNoncentral(0.0, 2.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSfNoncentral(-3.0, 2.0, 5.0), 1.0);
  for (double x : {0.1, 10.0, 100.0}) {
    const double p = ChiSquareSfNoncentral(x, 2.5, 60.0);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace ss::stats
