#include "stats/resampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/summary.hpp"

namespace ss::stats {
namespace {

TEST(PermutationPlanTest, ShapeAndValidity) {
  const PermutationPlan plan(1, 50, 10);
  EXPECT_EQ(plan.replicates(), 10u);
  EXPECT_EQ(plan.n(), 50u);
  for (std::size_t b = 0; b < 10; ++b) {
    std::vector<std::uint32_t> sorted = plan.Get(b);
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(PermutationPlanTest, DeterministicInSeed) {
  const PermutationPlan a(7, 20, 5);
  const PermutationPlan b(7, 20, 5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a.Get(i), b.Get(i));
}

TEST(PermutationPlanTest, ReplicatesDiffer) {
  const PermutationPlan plan(7, 30, 4);
  EXPECT_NE(plan.Get(0), plan.Get(1));
  EXPECT_NE(plan.Get(1), plan.Get(2));
}

TEST(PermutationPlanTest, PrefixStability) {
  // Replicate b must not depend on how many replicates were requested —
  // critical for incrementally extending B.
  const PermutationPlan small(3, 25, 4);
  const PermutationPlan large(3, 25, 16);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(small.Get(b), large.Get(b));
}

TEST(MonteCarloWeightsTest, ShapeAndMoments) {
  const MonteCarloWeights weights(5, 1000, 20);
  EXPECT_EQ(weights.replicates(), 20u);
  std::vector<double> all;
  for (std::size_t b = 0; b < 20; ++b) {
    const auto& z = weights.Get(b);
    ASSERT_EQ(z.size(), 1000u);
    all.insert(all.end(), z.begin(), z.end());
  }
  const Summary s = Summarize(all);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stdev, 1.0, 0.02);
}

TEST(MonteCarloWeightsTest, DeterministicAndPrefixStable) {
  const MonteCarloWeights a(9, 100, 3);
  const MonteCarloWeights b(9, 100, 8);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a.Get(i), b.Get(i));
}

TEST(MonteCarloReplicateScoreTest, DotProduct) {
  EXPECT_DOUBLE_EQ(
      MonteCarloReplicateScore({1.0, 2.0, 3.0}, {0.5, -1.0, 2.0}),
      0.5 - 2.0 + 6.0);
}

TEST(MonteCarloReplicateScoreTest, ZeroContributionsGiveZero) {
  const MonteCarloWeights weights(2, 50, 1);
  EXPECT_DOUBLE_EQ(
      MonteCarloReplicateScore(std::vector<double>(50, 0.0), weights.Get(0)),
      0.0);
}

TEST(MonteCarloZBlockTest, RowsBitwiseEqualPerReplicateDraws) {
  // The batched draw must reproduce the per-replicate streams exactly —
  // this is what makes batching invisible to results.
  const std::uint64_t seed = 91;
  const std::size_t n = 37;
  const MonteCarloWeights reference(seed, n, 10);
  // Two blocks split at an arbitrary boundary cover the whole range.
  const std::vector<double> head = MonteCarloZBlock(seed, n, 0, 3);
  const std::vector<double> tail = MonteCarloZBlock(seed, n, 3, 7);
  ASSERT_EQ(head.size(), 3 * n);
  ASSERT_EQ(tail.size(), 7 * n);
  for (std::size_t b = 0; b < 10; ++b) {
    // Patient-major layout: replicate b's draw for patient i sits at
    // [i * block_count + local_b] within its block.
    const double* block = b < 3 ? head.data() : tail.data();
    const std::size_t block_count = b < 3 ? 3 : 7;
    const std::size_t local_b = b < 3 ? b : b - 3;
    const std::vector<double>& z = reference.Get(b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(block[i * block_count + local_b], z[i])
          << "replicate " << b << " element " << i;
    }
  }
}

TEST(BatchedReplicateScoresTest, BitwiseEqualPerReplicateDotProducts) {
  // Counts straddle the 4-wide unroll boundary (tail of 0..3 replicates).
  std::vector<double> u(53);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = std::sin(static_cast<double>(i)) * (i % 7 == 0 ? -3.0 : 1.0);
  }
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u}) {
    const std::vector<double> zblock = MonteCarloZBlock(13, u.size(), 0, count);
    std::vector<double> batched;
    BatchedReplicateScores(u, zblock.data(), count, &batched);
    ASSERT_EQ(batched.size(), count);
    for (std::size_t r = 0; r < count; ++r) {
      std::vector<double> z(u.size());
      for (std::size_t i = 0; i < u.size(); ++i) z[i] = zblock[i * count + r];
      EXPECT_EQ(batched[r], MonteCarloReplicateScore(u, z))
          << "count " << count << " replicate " << r;
    }
  }
}

TEST(MonteCarloReplicateScoreTest, ReplicatesHaveCorrectVariance) {
  // For fixed contributions u, Ũ = Σ Z_i u_i has mean 0 and variance Σu².
  std::vector<double> u(200);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = std::sin(static_cast<double>(i));  // arbitrary fixed pattern
  }
  const double var_expected =
      std::inner_product(u.begin(), u.end(), u.begin(), 0.0);
  const MonteCarloWeights weights(31, u.size(), 4000);
  std::vector<double> scores;
  for (std::size_t b = 0; b < 4000; ++b) {
    scores.push_back(MonteCarloReplicateScore(u, weights.Get(b)));
  }
  const Summary s = Summarize(scores);
  EXPECT_NEAR(s.mean, 0.0, 3.0 * std::sqrt(var_expected / 4000.0));
  EXPECT_NEAR(s.stdev * s.stdev, var_expected, 0.1 * var_expected);
}

}  // namespace
}  // namespace ss::stats
