#include "stats/resampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/summary.hpp"

namespace ss::stats {
namespace {

TEST(PermutationPlanTest, ShapeAndValidity) {
  const PermutationPlan plan(1, 50, 10);
  EXPECT_EQ(plan.replicates(), 10u);
  EXPECT_EQ(plan.n(), 50u);
  for (std::size_t b = 0; b < 10; ++b) {
    std::vector<std::uint32_t> sorted = plan.Get(b);
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(PermutationPlanTest, DeterministicInSeed) {
  const PermutationPlan a(7, 20, 5);
  const PermutationPlan b(7, 20, 5);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(a.Get(i), b.Get(i));
}

TEST(PermutationPlanTest, ReplicatesDiffer) {
  const PermutationPlan plan(7, 30, 4);
  EXPECT_NE(plan.Get(0), plan.Get(1));
  EXPECT_NE(plan.Get(1), plan.Get(2));
}

TEST(PermutationPlanTest, PrefixStability) {
  // Replicate b must not depend on how many replicates were requested —
  // critical for incrementally extending B.
  const PermutationPlan small(3, 25, 4);
  const PermutationPlan large(3, 25, 16);
  for (std::size_t b = 0; b < 4; ++b) EXPECT_EQ(small.Get(b), large.Get(b));
}

TEST(MonteCarloWeightsTest, ShapeAndMoments) {
  const MonteCarloWeights weights(5, 1000, 20);
  EXPECT_EQ(weights.replicates(), 20u);
  std::vector<double> all;
  for (std::size_t b = 0; b < 20; ++b) {
    const auto& z = weights.Get(b);
    ASSERT_EQ(z.size(), 1000u);
    all.insert(all.end(), z.begin(), z.end());
  }
  const Summary s = Summarize(all);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stdev, 1.0, 0.02);
}

TEST(MonteCarloWeightsTest, DeterministicAndPrefixStable) {
  const MonteCarloWeights a(9, 100, 3);
  const MonteCarloWeights b(9, 100, 8);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a.Get(i), b.Get(i));
}

TEST(MonteCarloReplicateScoreTest, DotProduct) {
  EXPECT_DOUBLE_EQ(
      MonteCarloReplicateScore({1.0, 2.0, 3.0}, {0.5, -1.0, 2.0}),
      0.5 - 2.0 + 6.0);
}

TEST(MonteCarloReplicateScoreTest, ZeroContributionsGiveZero) {
  const MonteCarloWeights weights(2, 50, 1);
  EXPECT_DOUBLE_EQ(
      MonteCarloReplicateScore(std::vector<double>(50, 0.0), weights.Get(0)),
      0.0);
}

TEST(MonteCarloReplicateScoreTest, ReplicatesHaveCorrectVariance) {
  // For fixed contributions u, Ũ = Σ Z_i u_i has mean 0 and variance Σu².
  std::vector<double> u(200);
  for (std::size_t i = 0; i < u.size(); ++i) {
    u[i] = std::sin(static_cast<double>(i));  // arbitrary fixed pattern
  }
  const double var_expected =
      std::inner_product(u.begin(), u.end(), u.begin(), 0.0);
  const MonteCarloWeights weights(31, u.size(), 4000);
  std::vector<double> scores;
  for (std::size_t b = 0; b < 4000; ++b) {
    scores.push_back(MonteCarloReplicateScore(u, weights.Get(b)));
  }
  const Summary s = Summarize(scores);
  EXPECT_NEAR(s.mean, 0.0, 3.0 * std::sqrt(var_expected / 4000.0));
  EXPECT_NEAR(s.stdev * s.stdev, var_expected, 0.1 * var_expected);
}

}  // namespace
}  // namespace ss::stats
