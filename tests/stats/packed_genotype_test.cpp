// Unit tests for the 2-bit packed genotype block: lossless roundtrip,
// raw-byte fallback for out-of-range dosages, popcount allele counts, and
// the payload-size contract the cache/spill byte accounting relies on.
#include "stats/kernels/packed_genotype.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace ss::stats {
namespace {

std::vector<std::uint8_t> RandomDosages(Rng& rng, std::size_t n,
                                        std::uint32_t bound) {
  std::vector<std::uint8_t> dosages(n);
  for (auto& d : dosages) d = static_cast<std::uint8_t>(rng.NextBounded(bound));
  return dosages;
}

TEST(PackedGenotypeTest, RoundTripsSmallDosagesPacked) {
  Rng rng(77001);
  for (std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 63u, 64u, 70u}) {
    const std::vector<std::uint8_t> dosages = RandomDosages(rng, n, 4);
    const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
    EXPECT_TRUE(block.packed()) << "n=" << n;
    EXPECT_EQ(block.size(), n);
    EXPECT_EQ(block.payload().size(), (n + 3) / 4) << "n=" << n;
    EXPECT_EQ(block.Unpack(), dosages) << "n=" << n;
  }
}

TEST(PackedGenotypeTest, FallsBackToRawBytesForLargeDosages) {
  std::vector<std::uint8_t> dosages = {0, 1, 2, 200, 3, 0};
  const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
  EXPECT_FALSE(block.packed());
  EXPECT_EQ(block.payload().size(), dosages.size());
  EXPECT_EQ(block.Unpack(), dosages);
}

TEST(PackedGenotypeTest, UnpackIntoReusesBuffer) {
  const std::vector<std::uint8_t> dosages = {2, 0, 1, 3, 3, 1, 0};
  const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
  std::vector<std::uint8_t> out(128, 0xff);
  block.UnpackInto(&out);
  EXPECT_EQ(out, dosages);
}

TEST(PackedGenotypeTest, AlleleCountMatchesDirectSum) {
  Rng rng(77002);
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 8u, 31u, 32u, 33u, 129u}) {
    const std::vector<std::uint8_t> dosages = RandomDosages(rng, n, 4);
    const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
    const std::uint64_t expected =
        std::accumulate(dosages.begin(), dosages.end(), std::uint64_t{0});
    EXPECT_EQ(block.AlleleCount(), expected) << "n=" << n;
  }
  // Fallback path sums raw bytes.
  const std::vector<std::uint8_t> raw = {200, 1, 0, 5};
  EXPECT_EQ(PackedGenotypeBlock::Pack(raw).AlleleCount(), 206u);
}

TEST(PackedGenotypeTest, FromPayloadReconstructsEqualBlock) {
  const std::vector<std::uint8_t> dosages = {1, 2, 0, 3, 2, 2, 1, 0, 3};
  const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
  const PackedGenotypeBlock rebuilt = PackedGenotypeBlock::FromPayload(
      block.size(), block.packed(), block.payload());
  EXPECT_EQ(rebuilt, block);
  EXPECT_EQ(rebuilt.Unpack(), dosages);
}

TEST(PackedGenotypeTest, PackedPayloadIsQuarterOfUnpacked) {
  Rng rng(77003);
  const std::size_t n = 1000;
  const std::vector<std::uint8_t> dosages = RandomDosages(rng, n, 3);
  const PackedGenotypeBlock block = PackedGenotypeBlock::Pack(dosages);
  EXPECT_EQ(block.payload().size(), 250u);
}

}  // namespace
}  // namespace ss::stats
