#include "stats/skat.hpp"

#include <gtest/gtest.h>

namespace ss::stats {
namespace {

std::unordered_map<std::uint32_t, double> Map(
    std::initializer_list<std::pair<const std::uint32_t, double>> init) {
  return std::unordered_map<std::uint32_t, double>(init);
}

TEST(SkatTest, WeightedSumOfSquaredScores) {
  SnpSet set{0, {1, 2}};
  const auto squared = Map({{1, 4.0}, {2, 9.0}});
  const auto weights = Map({{1, 2.0}, {2, 1.0}});
  // 2^2 * 4 + 1^2 * 9 = 25.
  EXPECT_DOUBLE_EQ(SkatStatistic(set, squared, weights), 25.0);
}

TEST(SkatTest, MissingWeightDefaultsToOne) {
  SnpSet set{0, {1}};
  EXPECT_DOUBLE_EQ(SkatStatistic(set, Map({{1, 3.0}}), {}), 3.0);
}

TEST(SkatTest, FilteredSnpContributesNothing) {
  SnpSet set{0, {1, 99}};
  EXPECT_DOUBLE_EQ(SkatStatistic(set, Map({{1, 5.0}}), {}), 5.0);
}

TEST(SkatTest, StatisticIsNonNegative) {
  SnpSet set{0, {1, 2, 3}};
  const auto squared = Map({{1, 0.1}, {2, 7.0}, {3, 0.0}});
  EXPECT_GE(SkatStatistic(set, squared, Map({{1, 0.5}, {2, 2.0}, {3, 0.0}})),
            0.0);
}

TEST(SkatTest, AdditiveOverSetSplit) {
  // Splitting a set into two pieces: statistics add (linearity in SNPs).
  const auto squared = Map({{1, 1.0}, {2, 4.0}, {3, 9.0}, {4, 16.0}});
  const auto weights = Map({{1, 1.0}, {2, 0.5}, {3, 2.0}, {4, 1.0}});
  SnpSet whole{0, {1, 2, 3, 4}};
  SnpSet left{1, {1, 2}};
  SnpSet right{2, {3, 4}};
  EXPECT_DOUBLE_EQ(SkatStatistic(whole, squared, weights),
                   SkatStatistic(left, squared, weights) +
                       SkatStatistic(right, squared, weights));
}

TEST(SkatTest, WeightScalingQuadratic) {
  // Doubling all weights multiplies the statistic by 4.
  const auto squared = Map({{1, 2.0}, {2, 3.0}});
  const auto weights = Map({{1, 1.5}, {2, 0.5}});
  auto doubled = weights;
  for (auto& [snp, w] : doubled) w *= 2.0;
  SnpSet set{0, {1, 2}};
  EXPECT_DOUBLE_EQ(SkatStatistic(set, squared, doubled),
                   4.0 * SkatStatistic(set, squared, weights));
}

TEST(SkatTest, BatchMatchesSingle) {
  const auto squared = Map({{0, 1.0}, {1, 2.0}, {2, 3.0}});
  const auto weights = Map({{0, 1.0}, {1, 1.0}, {2, 1.0}});
  std::vector<SnpSet> sets = {{0, {0, 1}}, {1, {2}}, {2, {0, 1, 2}}};
  const auto batch = SkatStatistics(sets, squared, weights);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(batch[k], SkatStatistic(sets[k], squared, weights));
  }
}

TEST(SkatValidationTest, AcceptsPartition) {
  std::vector<SnpSet> sets = {{0, {0, 1}}, {1, {2}}};
  EXPECT_TRUE(ValidateSnpSets(sets, 3).ok());
}

TEST(SkatValidationTest, RejectsEmptyFamilyAndEmptySet) {
  EXPECT_FALSE(ValidateSnpSets({}, 3).ok());
  std::vector<SnpSet> sets = {{0, {}}};
  EXPECT_FALSE(ValidateSnpSets(sets, 3).ok());
}

TEST(SkatValidationTest, RejectsOutOfRangeSnp) {
  std::vector<SnpSet> sets = {{0, {5}}};
  EXPECT_EQ(ValidateSnpSets(sets, 3).code(), StatusCode::kInvalidArgument);
}

TEST(SkatValidationTest, AllowsOverlap) {
  std::vector<SnpSet> sets = {{0, {0, 1}}, {1, {1, 2}}};
  EXPECT_TRUE(ValidateSnpSets(sets, 3).ok());
}

TEST(UnionOfSetsTest, DeduplicatesAndSorts) {
  std::vector<SnpSet> sets = {{0, {3, 1}}, {1, {1, 2}}};
  EXPECT_EQ(UnionOfSets(sets), (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(UnionOfSetsTest, EmptyFamily) {
  EXPECT_TRUE(UnionOfSets({}).empty());
}

}  // namespace
}  // namespace ss::stats
