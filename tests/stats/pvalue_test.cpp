#include "stats/pvalue.hpp"

#include <gtest/gtest.h>

namespace ss::stats {
namespace {

TEST(EmpiricalPValueTest, AddOneEstimator) {
  EXPECT_DOUBLE_EQ(EmpiricalPValue(0, 99), 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(EmpiricalPValue(4, 99), 5.0 / 100.0);
  EXPECT_DOUBLE_EQ(EmpiricalPValue(99, 99), 1.0);
}

TEST(EmpiricalPValueTest, RawProportion) {
  EXPECT_DOUBLE_EQ(EmpiricalPValue(0, 100, /*add_one=*/false), 0.0);
  EXPECT_DOUBLE_EQ(EmpiricalPValue(25, 100, false), 0.25);
}

TEST(EmpiricalPValueTest, NeverZeroWithAddOne) {
  for (std::uint64_t b : {1ULL, 10ULL, 10000ULL}) {
    EXPECT_GT(EmpiricalPValue(0, b), 0.0);
  }
}

TEST(EmpiricalPValueTest, ZeroReplicatesIsOne) {
  EXPECT_DOUBLE_EQ(EmpiricalPValue(0, 0), 1.0);
}

TEST(EmpiricalPValueTest, MonotoneInCount) {
  double prev = 0.0;
  for (std::uint64_t c = 0; c <= 50; ++c) {
    const double p = EmpiricalPValue(c, 50);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(EmpiricalPValueTest, PrecisionImprovesWithB) {
  // The smallest attainable p-value shrinks as 1/(B+1) — the paper's note
  // that p-value precision is tied to the number of resamplings.
  EXPECT_GT(EmpiricalPValue(0, 10), EmpiricalPValue(0, 100));
  EXPECT_GT(EmpiricalPValue(0, 100), EmpiricalPValue(0, 10000));
}

// PValueFromCounts is THE count→p-value convention point (empirical,
// raw, early-stopped); EmpiricalPValue is its fixed-B alias.

TEST(PValueFromCountsTest, ZeroReplicatesIsOneInEveryMode) {
  EXPECT_DOUBLE_EQ(PValueFromCounts(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(PValueFromCounts(0, 0, /*early_stopped=*/true), 1.0);
  EXPECT_DOUBLE_EQ(
      PValueFromCounts(0, 0, /*early_stopped=*/false, /*add_one=*/false),
      1.0);
}

TEST(PValueFromCountsTest, EarlyStoppedUsesUnbiasedRatio) {
  // Besag–Clifford: p̂ = h/L, no +1 correction (that device assumes a
  // fixed B and would bias the stopped estimator).
  EXPECT_DOUBLE_EQ(PValueFromCounts(10, 100, /*early_stopped=*/true), 0.1);
  EXPECT_DOUBLE_EQ(PValueFromCounts(3, 3, /*early_stopped=*/true), 1.0);
  EXPECT_DOUBLE_EQ(PValueFromCounts(1, 1000, /*early_stopped=*/true), 0.001);
}

TEST(PValueFromCountsTest, EarlyStoppedIgnoresAddOne) {
  EXPECT_DOUBLE_EQ(
      PValueFromCounts(10, 100, /*early_stopped=*/true, /*add_one=*/true),
      PValueFromCounts(10, 100, /*early_stopped=*/true, /*add_one=*/false));
}

TEST(PValueFromCountsTest, FixedBMatchesEmpiricalAlias) {
  for (std::uint64_t c : {0ULL, 7ULL, 99ULL}) {
    EXPECT_DOUBLE_EQ(PValueFromCounts(c, 99), EmpiricalPValue(c, 99));
    EXPECT_DOUBLE_EQ(PValueFromCounts(c, 99, false, false),
                     EmpiricalPValue(c, 99, false));
  }
}

TEST(PValueFromCountsTest, AlwaysInUnitInterval) {
  for (std::uint64_t b : {1ULL, 10ULL, 500ULL}) {
    for (std::uint64_t c = 0; c <= b; c += (b / 10) + 1) {
      for (bool stopped : {false, true}) {
        const double p = PValueFromCounts(c, b, stopped);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST(BonferroniTest, MultipliesAndClamps) {
  const auto adjusted = BonferroniAdjust({0.01, 0.2, 0.5});
  EXPECT_DOUBLE_EQ(adjusted[0], 0.03);
  EXPECT_DOUBLE_EQ(adjusted[1], 0.6);
  EXPECT_DOUBLE_EQ(adjusted[2], 1.0);
}

TEST(BonferroniTest, EmptyInput) {
  EXPECT_TRUE(BonferroniAdjust({}).empty());
}

TEST(BenjaminiHochbergTest, KnownExample) {
  // p = {0.01, 0.04, 0.03, 0.005} (m=4):
  // sorted: 0.005(r1) -> 0.02, 0.01(r2) -> 0.02, 0.03(r3) -> 0.04,
  // 0.04(r4) -> 0.04; monotone from the top already.
  const auto adjusted = BenjaminiHochbergAdjust({0.01, 0.04, 0.03, 0.005});
  EXPECT_NEAR(adjusted[3], 0.02, 1e-12);
  EXPECT_NEAR(adjusted[0], 0.02, 1e-12);
  EXPECT_NEAR(adjusted[2], 0.04, 1e-12);
  EXPECT_NEAR(adjusted[1], 0.04, 1e-12);
}

TEST(BenjaminiHochbergTest, PreservesOrderAndBounds) {
  const std::vector<double> p = {0.9, 0.001, 0.03, 0.5, 0.0499};
  const auto adjusted = BenjaminiHochbergAdjust(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(adjusted[i], p[i]);   // adjustment never decreases
    EXPECT_LE(adjusted[i], 1.0);
  }
  // Ranking by adjusted p preserves ranking by raw p.
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (p[i] < p[j]) {
        EXPECT_LE(adjusted[i], adjusted[j]);
      }
    }
  }
}

TEST(BenjaminiHochbergTest, LessConservativeThanBonferroni) {
  const std::vector<double> p = {0.01, 0.011, 0.012, 0.013};
  const auto bh = BenjaminiHochbergAdjust(p);
  const auto bonf = BonferroniAdjust(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_LE(bh[i], bonf[i]);
  }
}

}  // namespace
}  // namespace ss::stats
