#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/cox_score.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

SurvivalData RandomSurvival(Rng& rng, int n) {
  SurvivalData data;
  for (int i = 0; i < n; ++i) {
    data.time.push_back(SampleExponential(rng, 1.0 / 12.0));
    data.event.push_back(SampleBernoulli(rng, 0.85) ? 1 : 0);
  }
  return data;
}

std::vector<std::uint8_t> RandomGenotypes(Rng& rng, int n) {
  std::vector<std::uint8_t> g;
  for (int i = 0; i < n; ++i) {
    g.push_back(static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.3)));
  }
  return g;
}

TEST(StratifiedCoxTest, SingleStratumEqualsUnstratified) {
  Rng rng(1);
  const SurvivalData data = RandomSurvival(rng, 120);
  const auto g = RandomGenotypes(rng, 120);
  const RiskSetIndex index(data);
  const auto plain = CoxScoreContributions(data, index, g);
  const auto stratified = StratifiedCoxScoreContributions(
      data, std::vector<std::uint32_t>(120, 0), g);
  ASSERT_EQ(plain.size(), stratified.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_NEAR(plain[i], stratified[i], 1e-12);
  }
}

TEST(StratifiedCoxTest, StrataAreIndependentSubproblems) {
  // Hand-check: contributions within each stratum equal the per-stratum
  // unstratified computation.
  Rng rng(2);
  const SurvivalData data = RandomSurvival(rng, 100);
  const auto g = RandomGenotypes(rng, 100);
  std::vector<std::uint32_t> strata(100);
  for (int i = 0; i < 100; ++i) strata[i] = static_cast<std::uint32_t>(i % 3);

  const auto stratified = StratifiedCoxScoreContributions(data, strata, g);
  for (std::uint32_t s = 0; s < 3; ++s) {
    SurvivalData sub;
    std::vector<std::uint8_t> sub_g;
    std::vector<std::size_t> positions;
    for (int i = 0; i < 100; ++i) {
      if (strata[i] == s) {
        sub.time.push_back(data.time[i]);
        sub.event.push_back(data.event[i]);
        sub_g.push_back(g[i]);
        positions.push_back(static_cast<std::size_t>(i));
      }
    }
    const RiskSetIndex sub_index(sub);
    const auto expected = CoxScoreContributions(sub, sub_index, sub_g);
    for (std::size_t k = 0; k < positions.size(); ++k) {
      EXPECT_NEAR(stratified[positions[k]], expected[k], 1e-12);
    }
  }
}

TEST(StratifiedCoxTest, RemovesStratumLevelConfounding) {
  // Baseline hazard differs wildly between two sites, and genotype
  // frequency differs between sites (classic confounding). Unstratified
  // scores pick up the site effect; stratified scores do not.
  Rng rng(3);
  const int n = 2000;
  SurvivalData data;
  std::vector<std::uint8_t> g(n);
  std::vector<std::uint32_t> strata(n);
  for (int i = 0; i < n; ++i) {
    const bool site_b = i % 2 == 1;
    strata[i] = site_b ? 1 : 0;
    // Site B: much higher hazard AND much higher allele frequency.
    const double rate = site_b ? 1.0 : 1.0 / 24.0;
    const double rho = site_b ? 0.45 : 0.10;
    data.time.push_back(SampleExponential(rng, rate));
    data.event.push_back(SampleBernoulli(rng, 0.85) ? 1 : 0);
    g[i] = static_cast<std::uint8_t>(SampleBinomial(rng, 2, rho));
  }
  const RiskSetIndex index(data);
  const auto plain = CoxScoreContributions(data, index, g);
  const auto stratified = StratifiedCoxScoreContributions(data, strata, g);

  auto z = [](const std::vector<double>& u) {
    const double score = std::accumulate(u.begin(), u.end(), 0.0);
    double variance = 0.0;
    for (double v : u) variance += v * v;
    return score / std::sqrt(variance);
  };
  EXPECT_GT(std::fabs(z(plain)), 5.0);      // spurious association
  EXPECT_LT(std::fabs(z(stratified)), 3.5);  // gone under stratification
}

TEST(StratifiedCoxTest, EmptyStratumLabelsTolerated) {
  // Labels {0, 2} leave stratum 1 empty; must not crash or contribute.
  SurvivalData data;
  data.time = {3.0, 2.0, 1.0, 4.0};
  data.event = {1, 1, 1, 1};
  const std::vector<std::uint32_t> strata = {0, 2, 0, 2};
  const auto u =
      StratifiedCoxScoreContributions(data, strata, {2, 1, 0, 1});
  EXPECT_EQ(u.size(), 4u);
}

TEST(StratifiedCoxTest, FullyStratifiedIsZero) {
  // One patient per stratum: every risk set is {self}, so all U_ij = 0.
  Rng rng(4);
  const SurvivalData data = RandomSurvival(rng, 20);
  const auto g = RandomGenotypes(rng, 20);
  std::vector<std::uint32_t> strata(20);
  std::iota(strata.begin(), strata.end(), 0u);
  for (double u : StratifiedCoxScoreContributions(data, strata, g)) {
    EXPECT_DOUBLE_EQ(u, 0.0);
  }
}

}  // namespace
}  // namespace ss::stats
