// Newton-Raphson Cox MLE (the Wald/LRT comparator). Correctness anchors:
// the score at the MLE is ~0, the score at beta=0 equals the efficient
// score statistic, and Wald/LRT/score agree asymptotically under H0.
#include "stats/wald.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/cox_score.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

struct Study {
  SurvivalData data;
  std::vector<std::uint8_t> genotypes;
};

/// Genotype-dependent hazard: effect > 0 shortens survival for carriers.
Study MakeStudy(std::uint64_t seed, int n, double effect) {
  Rng rng(seed);
  Study study;
  for (int i = 0; i < n; ++i) {
    const auto g = static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.3));
    const double rate = (1.0 / 12.0) * std::exp(effect * g);
    study.data.time.push_back(SampleExponential(rng, rate));
    study.data.event.push_back(SampleBernoulli(rng, 0.85) ? 1 : 0);
    study.genotypes.push_back(g);
  }
  return study;
}

TEST(CoxMleTest, ConvergesUnderNull) {
  const Study study = MakeStudy(1, 400, 0.0);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(std::fabs(result.beta), 0.5);  // near the true value 0
  EXPECT_GT(result.information, 0.0);
}

TEST(CoxMleTest, RecoversTrueEffect) {
  const double true_beta = 0.7;
  const Study study = MakeStudy(2, 4000, true_beta);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.beta, true_beta, 0.15);
}

TEST(CoxMleTest, LogLikelihoodIncreasesAtMle) {
  const Study study = MakeStudy(3, 500, 0.5);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  const double at_mle =
      CoxPartialLogLikelihood(study.data, index, study.genotypes, result.beta);
  const double at_zero =
      CoxPartialLogLikelihood(study.data, index, study.genotypes, 0.0);
  EXPECT_GE(at_mle, at_zero);
  // And the MLE is a local max: nudging beta reduces the likelihood.
  EXPECT_GE(at_mle, CoxPartialLogLikelihood(study.data, index,
                                            study.genotypes, result.beta + 0.1));
  EXPECT_GE(at_mle, CoxPartialLogLikelihood(study.data, index,
                                            study.genotypes, result.beta - 0.1));
}

TEST(CoxMleTest, LrtNonNegativeAndMatchesDefinition) {
  const Study study = MakeStudy(4, 500, 0.4);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  EXPECT_GE(result.lrt_statistic, -1e-9);
  const double manual =
      2.0 * (CoxPartialLogLikelihood(study.data, index, study.genotypes,
                                     result.beta) -
             CoxPartialLogLikelihood(study.data, index, study.genotypes, 0.0));
  EXPECT_NEAR(result.lrt_statistic, manual, 1e-9);
}

TEST(CoxMleTest, WaldAndLrtAgreeUnderLargeSamples) {
  const Study study = MakeStudy(5, 3000, 0.3);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  ASSERT_TRUE(result.converged);
  // χ²(1) statistics agree to within ~15% at this sample size.
  EXPECT_NEAR(result.wald_statistic / result.lrt_statistic, 1.0, 0.15);
}

TEST(CoxMleTest, MonomorphicSnpDoesNotConverge) {
  // All genotypes equal: the likelihood is flat in beta (no information).
  Study study = MakeStudy(6, 100, 0.0);
  study.genotypes.assign(study.genotypes.size(), 1);
  const RiskSetIndex index(study.data);
  const CoxMleResult result = FitCoxMle(study.data, index, study.genotypes);
  EXPECT_FALSE(result.converged);  // the "corrective action" path
  EXPECT_NEAR(result.beta, 0.0, 1e-9);
}

TEST(CoxMleTest, ScoreAtZeroEqualsEfficientScore) {
  // One Newton evaluation at beta=0 reproduces U_j — the score test is
  // literally the first step of this optimization, which is the paper's
  // argument for its cheapness.
  const Study study = MakeStudy(7, 300, 0.2);
  const RiskSetIndex index(study.data);
  const auto contributions =
      CoxScoreContributions(study.data, index, study.genotypes);
  const double score = CoxScoreStatistic(contributions);
  // Recover U(0) from a tiny finite difference of the log-likelihood.
  const double eps = 1e-6;
  const double numeric =
      (CoxPartialLogLikelihood(study.data, index, study.genotypes, eps) -
       CoxPartialLogLikelihood(study.data, index, study.genotypes, -eps)) /
      (2 * eps);
  EXPECT_NEAR(numeric, score, 1e-3);
}

TEST(CoxMleTest, IterationCountBounded) {
  CoxMleOptions options;
  options.max_iterations = 3;
  const Study study = MakeStudy(8, 500, 1.0);
  const RiskSetIndex index(study.data);
  const CoxMleResult result =
      FitCoxMle(study.data, index, study.genotypes, options);
  EXPECT_LE(result.iterations, 3);
}

}  // namespace
}  // namespace ss::stats
