#include "stats/covariates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

std::vector<std::uint8_t> RandomGenotypes(Rng& rng, std::size_t n,
                                          double rho = 0.3) {
  std::vector<std::uint8_t> g;
  for (std::size_t i = 0; i < n; ++i) {
    g.push_back(static_cast<std::uint8_t>(SampleBinomial(rng, 2, rho)));
  }
  return g;
}

TEST(AdjustedGaussianTest, NoCovariatesMatchesUnadjustedScore) {
  // With an intercept only, the adjusted score equals Σ (G-Ḡ)(Y-Ȳ); the
  // unadjusted LinearScoreContributions give Σ G(Y-Ȳ), and the two sums
  // agree because Σ(Y-Ȳ) = 0.
  Rng rng(1);
  QuantitativeData y;
  const std::size_t n = 150;
  for (std::size_t i = 0; i < n; ++i) y.value.push_back(SampleNormal(rng) * 3);
  const auto g = RandomGenotypes(rng, n);

  auto engine = AdjustedScoreEngine::Gaussian(y, {});
  ASSERT_TRUE(engine.ok());
  const auto adjusted = engine.value().Contributions(g);
  const auto unadjusted = LinearScoreContributions(y, y.Mean(), g);
  const double sum_adjusted =
      std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  const double sum_unadjusted =
      std::accumulate(unadjusted.begin(), unadjusted.end(), 0.0);
  EXPECT_NEAR(sum_adjusted, sum_unadjusted, 1e-8);
}

TEST(AdjustedGaussianTest, RemovesConfounderEffect) {
  // Y depends on covariate C only; G is correlated with C. Unadjusted,
  // the score picks up the confounding; adjusted, it is near zero.
  Rng rng(2);
  const std::size_t n = 2000;
  QuantitativeData y;
  std::vector<double> c(n);
  std::vector<std::uint8_t> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.4));
    c[i] = static_cast<double>(g[i]) + SampleNormal(rng) * 0.5;  // G -> C
    y.value.push_back(2.0 * c[i] + SampleNormal(rng));           // C -> Y
  }
  const auto unadjusted = LinearScoreContributions(y, y.Mean(), g);
  const double score_unadjusted =
      std::accumulate(unadjusted.begin(), unadjusted.end(), 0.0);

  auto engine = AdjustedScoreEngine::Gaussian(y, {c});
  ASSERT_TRUE(engine.ok());
  const auto adjusted = engine.value().Contributions(g);
  const double score_adjusted =
      std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  double v_adjusted = 0.0;
  for (double u : adjusted) v_adjusted += u * u;

  EXPECT_GT(std::fabs(score_unadjusted), 500.0);  // large spurious signal
  // Adjusted score is within ~3 sd of zero.
  EXPECT_LT(std::fabs(score_adjusted), 3.0 * std::sqrt(v_adjusted));
}

TEST(AdjustedGaussianTest, PreservesTrueDirectEffect) {
  // Y depends on both G (directly) and a covariate; the adjusted score
  // must remain strongly positive.
  Rng rng(3);
  const std::size_t n = 2000;
  QuantitativeData y;
  std::vector<double> c(n);
  std::vector<std::uint8_t> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.4));
    c[i] = SampleNormal(rng);
    y.value.push_back(1.0 * g[i] + 2.0 * c[i] + SampleNormal(rng));
  }
  auto engine = AdjustedScoreEngine::Gaussian(y, {c});
  ASSERT_TRUE(engine.ok());
  const auto adjusted = engine.value().Contributions(g);
  const double score =
      std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  double variance = 0.0;
  for (double u : adjusted) variance += u * u;
  EXPECT_GT(score / std::sqrt(variance), 5.0);  // strong z-score survives
}

TEST(AdjustedGaussianTest, CollinearCovariatesFail) {
  QuantitativeData y;
  y.value = {1, 2, 3, 4};
  const std::vector<double> c = {1, 2, 3, 4};
  const std::vector<double> c2 = {2, 4, 6, 8};  // 2*c
  EXPECT_FALSE(AdjustedScoreEngine::Gaussian(y, {c, c2}).ok());
}

TEST(AdjustedBinomialTest, NoCovariatesMatchesUnadjustedScoreSum) {
  Rng rng(4);
  const std::size_t n = 300;
  BinaryData y;
  for (std::size_t i = 0; i < n; ++i) {
    y.value.push_back(SampleBernoulli(rng, 0.35) ? 1 : 0);
  }
  const auto g = RandomGenotypes(rng, n);
  auto engine = AdjustedScoreEngine::Binomial(y, {});
  ASSERT_TRUE(engine.ok());
  const auto adjusted = engine.value().Contributions(g);
  const auto unadjusted = LogisticScoreContributions(y, y.CaseRate(), g);
  EXPECT_NEAR(std::accumulate(adjusted.begin(), adjusted.end(), 0.0),
              std::accumulate(unadjusted.begin(), unadjusted.end(), 0.0),
              1e-6);
}

TEST(AdjustedBinomialTest, RemovesConfounderEffect) {
  Rng rng(5);
  const std::size_t n = 3000;
  BinaryData y;
  std::vector<double> c(n);
  std::vector<std::uint8_t> g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.4));
    c[i] = static_cast<double>(g[i]) + SampleNormal(rng) * 0.5;
    const double p = 1.0 / (1.0 + std::exp(-(-0.5 + 1.0 * c[i])));
    y.value.push_back(SampleBernoulli(rng, p) ? 1 : 0);
  }
  const auto unadjusted = LogisticScoreContributions(y, y.CaseRate(), g);
  const double score_unadjusted =
      std::accumulate(unadjusted.begin(), unadjusted.end(), 0.0);

  auto engine = AdjustedScoreEngine::Binomial(y, {c});
  ASSERT_TRUE(engine.ok());
  const auto adjusted = engine.value().Contributions(g);
  const double score_adjusted =
      std::accumulate(adjusted.begin(), adjusted.end(), 0.0);
  double v_adjusted = 0.0;
  for (double u : adjusted) v_adjusted += u * u;

  EXPECT_GT(std::fabs(score_unadjusted), 100.0);
  EXPECT_LT(std::fabs(score_adjusted), 3.5 * std::sqrt(v_adjusted));
}

TEST(AdjustedBinomialTest, ResidualsSumToZeroWithIntercept) {
  Rng rng(6);
  BinaryData y;
  for (int i = 0; i < 200; ++i) {
    y.value.push_back(SampleBernoulli(rng, 0.6) ? 1 : 0);
  }
  auto engine = AdjustedScoreEngine::Binomial(y, {});
  ASSERT_TRUE(engine.ok());
  const auto& resid = engine.value().residuals();
  EXPECT_NEAR(std::accumulate(resid.begin(), resid.end(), 0.0), 0.0, 1e-6);
}

}  // namespace
}  // namespace ss::stats
