#include "stats/cox_score.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

/// Random survival data with the paper's generative shape.
SurvivalData RandomSurvival(std::uint64_t seed, int n, double event_rate = 0.85) {
  Rng rng(seed);
  SurvivalData data;
  for (int i = 0; i < n; ++i) {
    data.time.push_back(SampleExponential(rng, 1.0 / 12.0));
    data.event.push_back(SampleBernoulli(rng, event_rate) ? 1 : 0);
  }
  return data;
}

std::vector<std::uint8_t> RandomGenotypes(std::uint64_t seed, int n,
                                          double rho = 0.3) {
  Rng rng(seed);
  std::vector<std::uint8_t> g;
  for (int i = 0; i < n; ++i) {
    g.push_back(static_cast<std::uint8_t>(SampleBinomial(rng, 2, rho)));
  }
  return g;
}

TEST(CoxScoreTest, HandWorkedExample) {
  // 3 patients, times 3 > 2 > 1, all events, genotypes 2, 1, 0.
  //   patient 0 (t=3): risk set {0}, a=2, b=1, U = 2 - 2/1 = 0
  //   patient 1 (t=2): risk set {0,1}, a=3, b=2, U = 1 - 3/2 = -0.5
  //   patient 2 (t=1): risk set {0,1,2}, a=3, b=3, U = 0 - 1 = -1
  SurvivalData data;
  data.time = {3.0, 2.0, 1.0};
  data.event = {1, 1, 1};
  const RiskSetIndex index(data);
  const auto u = CoxScoreContributions(data, index, {2, 1, 0});
  ASSERT_EQ(u.size(), 3u);
  EXPECT_DOUBLE_EQ(u[0], 0.0);
  EXPECT_DOUBLE_EQ(u[1], -0.5);
  EXPECT_DOUBLE_EQ(u[2], -1.0);
  EXPECT_DOUBLE_EQ(CoxScoreStatistic(u), -1.5);
}

TEST(CoxScoreTest, CensoredPatientsContributeZero) {
  SurvivalData data;
  data.time = {3.0, 2.0, 1.0};
  data.event = {1, 0, 1};
  const RiskSetIndex index(data);
  const auto u = CoxScoreContributions(data, index, {2, 1, 0});
  EXPECT_DOUBLE_EQ(u[1], 0.0);
}

TEST(CoxScoreTest, ConstantGenotypeScoresZero) {
  // If every patient has the same genotype, G_ij == a_ij/b_i exactly.
  const SurvivalData data = RandomSurvival(3, 100);
  const RiskSetIndex index(data);
  for (std::uint8_t g : {0, 1, 2}) {
    const auto u = CoxScoreContributions(
        data, index, std::vector<std::uint8_t>(100, g));
    for (double v : u) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(CoxScoreTest, FastMatchesNaiveOnRandomData) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const SurvivalData data = RandomSurvival(seed, 150);
    const RiskSetIndex index(data);
    const auto g = RandomGenotypes(seed + 100, 150);
    const auto fast = CoxScoreContributions(data, index, g);
    const auto naive = CoxScoreContributionsNaive(data, g);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-12) << "seed " << seed << " i " << i;
    }
  }
}

TEST(CoxScoreTest, FastMatchesNaiveWithHeavyTies) {
  Rng rng(77);
  SurvivalData data;
  for (int i = 0; i < 120; ++i) {
    data.time.push_back(static_cast<double>(rng.NextBounded(5)));  // ties
    data.event.push_back(SampleBernoulli(rng, 0.7) ? 1 : 0);
  }
  const RiskSetIndex index(data);
  const auto g = RandomGenotypes(78, 120);
  const auto fast = CoxScoreContributions(data, index, g);
  const auto naive = CoxScoreContributionsNaive(data, g);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-12);
  }
}

TEST(CoxScoreTest, LastEventHasZeroContributionWhenAlone) {
  // The patient with the longest (unique) time has risk set {self}:
  // U = g - g/1 = 0 regardless of genotype.
  SurvivalData data;
  data.time = {10.0, 2.0, 1.0};
  data.event = {1, 1, 1};
  const RiskSetIndex index(data);
  for (std::uint8_t g0 : {0, 1, 2}) {
    const auto u = CoxScoreContributions(data, index, {g0, 1, 1});
    EXPECT_DOUBLE_EQ(u[0], 0.0);
  }
}

TEST(CoxScoreTest, VarianceIsSumOfSquares) {
  const std::vector<double> u = {1.0, -2.0, 0.5};
  EXPECT_DOUBLE_EQ(CoxScoreVariance(u), 1.0 + 4.0 + 0.25);
}

TEST(CoxScoreTest, ScoreCenteredUnderNull) {
  // Under H0 (genotypes independent of survival), E[U_j] = 0: the average
  // score across many independent SNPs should be near zero relative to its
  // spread.
  const SurvivalData data = RandomSurvival(11, 300);
  const RiskSetIndex index(data);
  std::vector<double> scores;
  for (std::uint64_t j = 0; j < 300; ++j) {
    const auto u =
        CoxScoreContributions(data, index, RandomGenotypes(1000 + j, 300));
    scores.push_back(CoxScoreStatistic(u));
  }
  double mean = std::accumulate(scores.begin(), scores.end(), 0.0) / 300.0;
  double sd = 0;
  for (double s : scores) sd += (s - mean) * (s - mean);
  sd = std::sqrt(sd / 299.0);
  EXPECT_LT(std::fabs(mean), 3.0 * sd / std::sqrt(300.0));
}

/// Sweep: fast == naive across sizes and event rates.
class CoxEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CoxEquivalenceSweep, FastEqualsNaive) {
  const auto [n, event_rate] = GetParam();
  const SurvivalData data = RandomSurvival(991, n, event_rate);
  const RiskSetIndex index(data);
  const auto g = RandomGenotypes(992, n);
  const auto fast = CoxScoreContributions(data, index, g);
  const auto naive = CoxScoreContributionsNaive(data, g);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], naive[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoxEquivalenceSweep,
    ::testing::Combine(::testing::Values(1, 2, 10, 64, 257),
                       ::testing::Values(0.0, 0.5, 0.85, 1.0)));

}  // namespace
}  // namespace ss::stats
