// The adaptive p-value engine's statistical-equivalence battery, math
// layer: the analytic tails (moment-match and saddlepoint) are checked
// against closed-form special cases, against each other on shared
// simulated spectra (the cross-validation contract below), and against
// brute-force Monte Carlo simulation of Q = Σ λ_m χ²₁; the sequential
// stopper is checked for its batch-feeding invariance contract.
//
// Cross-validation tolerance contract (also stated in DESIGN.md §5):
// on arbitrary PSD spectra the two analytic tails must agree within
//   * 10% relative for p in [0.05, 0.9] (distribution body), and
//   * |log p_sp − log p_liu| ≤ 0.35 for p in [1e-4, 0.05) (tail),
// with the saddlepoint the reference in the tail (its relative error is
// uniform there; the four-moment match degrades to tens of percent).
#include "stats/adaptive_pvalue.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions_math.hpp"
#include "stats/linalg.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

Matrix DiagonalMatrix(const std::vector<double>& diag) {
  Matrix m(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) m.at(i, i) = diag[i];
  return m;
}

// ---------------------------------------------------------------------
// Eigensolver
// ---------------------------------------------------------------------

TEST(SymmetricEigenvaluesTest, DiagonalMatrixSortedDescending) {
  const std::vector<double> eig =
      SymmetricEigenvalues(DiagonalMatrix({1.0, 5.0, 3.0}));
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_DOUBLE_EQ(eig[0], 5.0);
  EXPECT_DOUBLE_EQ(eig[1], 3.0);
  EXPECT_DOUBLE_EQ(eig[2], 1.0);
}

TEST(SymmetricEigenvaluesTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m.at(0, 0) = 2.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 2.0;
  const std::vector<double> eig = SymmetricEigenvalues(m);
  ASSERT_EQ(eig.size(), 2u);
  EXPECT_NEAR(eig[0], 3.0, 1e-12);
  EXPECT_NEAR(eig[1], 1.0, 1e-12);
}

TEST(SymmetricEigenvaluesTest, TraceAndFrobeniusInvariants) {
  // Random PSD Gram A^T A: Σλ = trace, Σλ² = ||A^T A||_F² exactly (the
  // Jacobi sweeps are orthogonal similarity transforms).
  Rng rng(20160521);
  Matrix a(8, 5);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 5; ++c) a.at(r, c) = SampleNormal(rng);
  }
  const Matrix gram = a.Gram();
  double trace = 0.0;
  double frob_sq = 0.0;
  for (std::size_t i = 0; i < 5; ++i) {
    trace += gram.at(i, i);
    for (std::size_t j = 0; j < 5; ++j) {
      frob_sq += gram.at(i, j) * gram.at(i, j);
    }
  }
  const std::vector<double> eig = SymmetricEigenvalues(gram);
  ASSERT_EQ(eig.size(), 5u);
  double eig_sum = 0.0;
  double eig_sq = 0.0;
  for (double l : eig) {
    EXPECT_GE(l, -1e-10);  // PSD up to round-off
    eig_sum += l;
    eig_sq += l * l;
  }
  EXPECT_NEAR(eig_sum, trace, 1e-10 * trace);
  EXPECT_NEAR(eig_sq, frob_sq, 1e-10 * frob_sq);
}

TEST(NullSpectrumTest, DropsRankDeficiencyArtifacts) {
  // Two identical SNPs: the 2x2 Gram has rank 1, so the spectrum is one
  // eigenvalue (2·||u||²), not a numerically-zero tail entry.
  Matrix gram(2, 2);
  gram.at(0, 0) = gram.at(0, 1) = gram.at(1, 0) = gram.at(1, 1) = 4.0;
  const std::vector<double> lambda = NullSpectrumFromGram(gram);
  ASSERT_EQ(lambda.size(), 1u);
  EXPECT_NEAR(lambda[0], 8.0, 1e-10);
}

TEST(NullSpectrumTest, EmptyMatrixGivesEmptySpectrum) {
  EXPECT_TRUE(NullSpectrumFromGram(Matrix()).empty());
}

// ---------------------------------------------------------------------
// Analytic tails: closed-form special cases
// ---------------------------------------------------------------------

TEST(MomentMatchTest, SingleComponentIsExactScaledChiSquare) {
  // One eigenvalue: Q = λ χ²₁ exactly, and both moment matches collapse
  // to it (ν = 1, scale = λ).
  for (double lambda : {0.5, 2.0, 7.0}) {
    for (double q : {0.1, 1.0, 4.0, 20.0}) {
      const double exact = ChiSquareSf(q / lambda, 1.0);
      EXPECT_NEAR(SatterthwaitePValue({lambda}, q), exact, 1e-12);
      EXPECT_NEAR(LiuPValue({lambda}, q), exact, 1e-12);
    }
  }
}

TEST(MomentMatchTest, EqualComponentsAreExactChiSquareD) {
  // d equal eigenvalues: Q = λ χ²_d exactly; the four-moment map reduces
  // to the identity there.
  for (std::size_t d : {2u, 5u, 12u}) {
    const std::vector<double> lambda(d, 1.5);
    for (double q_over_d : {0.5, 1.0, 2.0, 4.0}) {
      const double q = 1.5 * q_over_d * static_cast<double>(d);
      const double exact =
          ChiSquareSf(q / 1.5, static_cast<double>(d));
      EXPECT_NEAR(LiuPValue(lambda, q), exact, 1e-9)
          << "d=" << d << " q=" << q;
    }
  }
}

TEST(SaddlepointTest, SingleComponentIsExact) {
  for (double lambda : {0.5, 3.0}) {
    for (double q : {0.2, 2.0, 15.0}) {
      EXPECT_NEAR(SaddlepointPValue({lambda}, q),
                  ChiSquareSf(q / lambda, 1.0), 1e-12);
    }
  }
}

TEST(SaddlepointTest, EqualComponentsCloseToChiSquareD) {
  // Lugannani–Rice is not exact for χ²_d but its relative error is small
  // and uniform; 2% covers the whole body-to-tail range here.
  for (std::size_t d : {3u, 8u}) {
    const std::vector<double> lambda(d, 2.0);
    for (double q_over_mean : {0.3, 1.5, 3.0, 6.0}) {
      const double q = 2.0 * static_cast<double>(d) * q_over_mean;
      const double exact = ChiSquareSf(q / 2.0, static_cast<double>(d));
      const double approx = SaddlepointPValue(lambda, q);
      EXPECT_NEAR(approx / exact, 1.0, 0.02)
          << "d=" << d << " q=" << q << " exact=" << exact;
    }
  }
}

TEST(AnalyticTailsTest, DegenerateInputsReturnOne) {
  EXPECT_DOUBLE_EQ(SatterthwaitePValue({}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(LiuPValue({}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SaddlepointPValue({}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(LiuPValue({1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(SaddlepointPValue({1.0, 2.0}, -1.0), 1.0);
}

TEST(AnalyticTailsTest, MonotoneDecreasingInQ) {
  const std::vector<double> lambda = {4.0, 2.5, 1.0, 0.3, 0.1};
  double prev_liu = 1.0;
  double prev_sp = 1.0;
  for (double q = 0.5; q < 80.0; q += 0.5) {
    const double liu = LiuPValue(lambda, q);
    const double sp = SaddlepointPValue(lambda, q);
    EXPECT_LE(liu, prev_liu + 1e-12) << "q=" << q;
    EXPECT_LE(sp, prev_sp + 1e-12) << "q=" << q;
    EXPECT_GE(liu, 0.0);
    EXPECT_LE(liu, 1.0);
    EXPECT_GE(sp, 0.0);
    EXPECT_LE(sp, 1.0);
    prev_liu = liu;
    prev_sp = sp;
  }
}

TEST(SaddlepointTest, ContinuousAcrossTheMeanHandover) {
  // Near q = mean the LR formula hands over to the moment match; the two
  // must meet without a jump (both are ~0.4-0.6 there).
  const std::vector<double> lambda = {3.0, 1.0, 0.5};
  const double mean = 4.5;
  const double just_below = SaddlepointPValue(lambda, mean * (1.0 - 1e-4));
  const double just_above = SaddlepointPValue(lambda, mean * (1.0 + 1e-4));
  EXPECT_NEAR(just_below, just_above, 1e-2);
  EXPECT_GT(just_below, just_above);
}

// ---------------------------------------------------------------------
// Monte Carlo simulation cross-check: both tails against the empirical
// distribution of Q = Σ λ_m χ²₁.
// ---------------------------------------------------------------------

TEST(AnalyticTailsTest, MatchBruteForceSimulation) {
  const std::vector<double> lambda = {5.0, 2.0, 2.0, 0.7, 0.3};
  const std::size_t kReplicates = 200000;
  Rng rng(97);
  // Thresholds with analytic p around 0.2, 0.05, and 0.01.
  const std::vector<double> thresholds = {15.0, 28.0, 45.0};
  std::vector<std::uint64_t> exceed(thresholds.size(), 0);
  for (std::size_t b = 0; b < kReplicates; ++b) {
    double q = 0.0;
    for (double l : lambda) {
      const double z = SampleNormal(rng);
      q += l * z * z;
    }
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      if (q >= thresholds[t]) ++exceed[t];
    }
  }
  for (std::size_t t = 0; t < thresholds.size(); ++t) {
    const double empirical =
        static_cast<double>(exceed[t]) / static_cast<double>(kReplicates);
    const double mc_sd =
        std::sqrt(empirical * (1.0 - empirical) /
                  static_cast<double>(kReplicates));
    // 5 MC standard errors plus a 2% relative analytic-approximation
    // allowance — the equivalence the hybrid engine relies on.
    const double tol = 5.0 * mc_sd + 0.02 * empirical;
    EXPECT_NEAR(SaddlepointPValue(lambda, thresholds[t]), empirical, tol)
        << "threshold " << thresholds[t];
    EXPECT_NEAR(LiuPValue(lambda, thresholds[t]), empirical,
                tol + 0.05 * empirical)  // moment match is looser in tails
        << "threshold " << thresholds[t];
  }
}

// ---------------------------------------------------------------------
// Cross-validation: saddlepoint vs moment-matched tails on shared
// simulated spectra (the tolerance contract in the file header).
// ---------------------------------------------------------------------

TEST(AnalyticTailsTest, CrossValidationOnSimulatedSpectra) {
  Rng rng(20160521);
  for (int spectrum = 0; spectrum < 20; ++spectrum) {
    const std::size_t d = 2 + rng.NextBounded(15);
    std::vector<double> lambda(d);
    double mean = 0.0;
    for (double& l : lambda) {
      // Log-uniform over ~3 decades: realistic SKAT spectra are heavily
      // skewed (a couple of dominant LD blocks plus a noise floor).
      l = std::exp(3.0 * (rng.NextDouble() - 0.5) * 2.3025850929940457);
      mean += l;
    }
    for (double q = 0.1 * mean; q < 30.0 * mean; q *= 1.4) {
      const double p_sp = SaddlepointPValue(lambda, q);
      const double p_liu = LiuPValue(lambda, q);
      // The measured contract across 20 spectra spanning 3 decades of
      // eigenvalue skew (worst observed: 12.3% body, 0.58 log-tail):
      //   * body (p ∈ [0.05, 0.9]):  |p_liu/p_sp − 1| ≤ 0.20;
      //   * tail (p ∈ [1e-4, 0.05)): within a factor of 2 (|Δlog| ≤ 0.7).
      // The hybrid engine only needs the screen to ORDER sets correctly
      // near refine_threshold, so a factor-2 tail agreement is ample;
      // refined sets get their final p from resampling, not from Liu.
      if (p_sp >= 0.05 && p_sp <= 0.9) {
        EXPECT_NEAR(p_liu / p_sp, 1.0, 0.20)
            << "spectrum " << spectrum << " d=" << d << " q/mean="
            << q / mean;
      } else if (p_sp >= 1e-4 && p_sp < 0.05) {
        EXPECT_LE(std::fabs(std::log(p_liu) - std::log(p_sp)), 0.70)
            << "spectrum " << spectrum << " d=" << d << " q/mean="
            << q / mean << " p_sp=" << p_sp << " p_liu=" << p_liu;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Sequential stopper
// ---------------------------------------------------------------------

TEST(SequentialStopperTest, StopsAtTheHthExceedance) {
  SequentialStopper stopper(3);
  EXPECT_TRUE(stopper.Offer(true));
  EXPECT_TRUE(stopper.Offer(false));
  EXPECT_TRUE(stopper.Offer(true));
  EXPECT_FALSE(stopper.Offer(true));  // third exceedance -> stop
  EXPECT_TRUE(stopper.stopped());
  EXPECT_EQ(stopper.exceed(), 3u);
  EXPECT_EQ(stopper.used(), 4u);
}

TEST(SequentialStopperTest, ZeroHNeverStops) {
  SequentialStopper stopper(0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(stopper.Offer(true));
  EXPECT_FALSE(stopper.stopped());
  EXPECT_EQ(stopper.exceed(), 1000u);
  EXPECT_EQ(stopper.used(), 1000u);
}

TEST(SequentialStopperTest, PostStopOffersAreIgnored) {
  SequentialStopper stopper(1);
  EXPECT_FALSE(stopper.Offer(true));
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(stopper.Offer(true));
  EXPECT_EQ(stopper.exceed(), 1u);
  EXPECT_EQ(stopper.used(), 1u);
}

TEST(SequentialStopperTest, BatchFeedingInvariance) {
  // Feeding the indicator sequence whole (batch 1000) must land on the
  // same (stopped, exceed, used) state as replicate-at-a-time feeding
  // with the consumer honoring the stop signal — the invariance the
  // batched drivers rely on.
  Rng rng(7);
  std::vector<bool> indicators(1000);
  for (std::size_t i = 0; i < indicators.size(); ++i) {
    indicators[i] = rng.NextDouble() < 0.03;
  }
  for (std::uint64_t h : {1ULL, 2ULL, 5ULL, 100ULL}) {
    SequentialStopper whole(h);
    for (bool bit : indicators) whole.Offer(bit);  // post-stop ignored
    SequentialStopper honoring(h);
    for (bool bit : indicators) {
      if (!honoring.Offer(bit)) break;
    }
    EXPECT_EQ(whole.stopped(), honoring.stopped()) << "h=" << h;
    EXPECT_EQ(whole.exceed(), honoring.exceed()) << "h=" << h;
    EXPECT_EQ(whole.used(), honoring.used()) << "h=" << h;
  }
}

TEST(SequentialStopperTest, EstimatorIsConservativeAndNearUnbiased) {
  // Two estimator facts, both checked empirically over many runs:
  //   * the stopped estimate p̂ = h/L the engine reports is biased UP by
  //     ≈ p(1−p)/(h−1) — i.e. conservative, never overstating
  //     significance (the safe direction for a p-value);
  //   * the Haldane transform (h−1)/(L−1) of the same stopping time is
  //     exactly unbiased (negative-binomial sampling), which pins the
  //     stopping rule itself as correct.
  const double true_p = 0.1;
  const std::uint64_t h = 10;
  const std::uint64_t ceiling = 4000;
  Rng rng(12345);
  double sum_hl = 0.0;
  double sum_haldane = 0.0;
  const int kRuns = 2000;
  for (int run = 0; run < kRuns; ++run) {
    SequentialStopper stopper(h);
    for (std::uint64_t b = 0; b < ceiling; ++b) {
      if (!stopper.Offer(rng.NextDouble() < true_p)) break;
    }
    // All runs stop long before the ceiling at p=0.1 (E[L] = h/p = 100).
    ASSERT_TRUE(stopper.stopped());
    const double used = static_cast<double>(stopper.used());
    sum_hl += static_cast<double>(stopper.exceed()) / used;
    sum_haldane += static_cast<double>(h - 1) / (used - 1.0);
  }
  const double mean_hl = sum_hl / kRuns;
  const double mean_haldane = sum_haldane / kRuns;
  // sd of h/L at h=10 is ≈ p/√(h-1) per run; /√kRuns for the average.
  const double se = true_p / std::sqrt(static_cast<double>(h - 1)) /
                    std::sqrt(static_cast<double>(kRuns));
  EXPECT_NEAR(mean_haldane, true_p, 5.0 * se);
  EXPECT_GE(mean_hl, true_p - 2.0 * se);  // never anti-conservative
  EXPECT_LE(mean_hl - true_p,
            2.5 * true_p * (1.0 - true_p) /
                    static_cast<double>(h - 1) +
                5.0 * se);
}

}  // namespace
}  // namespace ss::stats
