// Burden / SKAT-O combination and Westfall-Young maxT adjustment tests.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/burden.hpp"
#include "stats/westfall_young.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

std::unordered_map<std::uint32_t, double> Map(
    std::initializer_list<std::pair<const std::uint32_t, double>> init) {
  return std::unordered_map<std::uint32_t, double>(init);
}

TEST(BurdenTest, SquaredWeightedSum) {
  SnpSet set{0, {1, 2}};
  // (2*3 + 1*(-1))^2 = 25.
  EXPECT_DOUBLE_EQ(
      BurdenStatistic(set, Map({{1, 3.0}, {2, -1.0}}), Map({{1, 2.0}, {2, 1.0}})),
      25.0);
}

TEST(BurdenTest, OppositeEffectsCancel) {
  // The classic burden weakness SKAT avoids: equal and opposite scores.
  SnpSet set{0, {1, 2}};
  const auto scores = Map({{1, 5.0}, {2, -5.0}});
  const auto weights = Map({{1, 1.0}, {2, 1.0}});
  EXPECT_DOUBLE_EQ(BurdenStatistic(set, scores, weights), 0.0);
  // SKAT sees the signal (uses squared scores).
  EXPECT_DOUBLE_EQ(SkatStatistic(set, Map({{1, 25.0}, {2, 25.0}}), weights),
                   50.0);
}

TEST(BurdenTest, AlignedEffectsBeatSkatScale) {
  // With aligned effects, burden = (sum)^2 > sum of squares = SKAT.
  SnpSet set{0, {1, 2}};
  const auto scores = Map({{1, 3.0}, {2, 4.0}});
  const auto weights = Map({{1, 1.0}, {2, 1.0}});
  EXPECT_DOUBLE_EQ(BurdenStatistic(set, scores, weights), 49.0);
  EXPECT_DOUBLE_EQ(SkatStatistic(set, Map({{1, 9.0}, {2, 16.0}}), weights),
                   25.0);
}

TEST(BurdenTest, MissingWeightDefaultsToOneAndFilteredSnpSkipped) {
  SnpSet set{0, {1, 99}};
  EXPECT_DOUBLE_EQ(BurdenStatistic(set, Map({{1, 2.0}}), {}), 4.0);
}

TEST(BurdenTest, BatchMatchesSingle) {
  const auto scores = Map({{0, 1.0}, {1, -2.0}, {2, 3.0}});
  const auto weights = Map({{0, 1.0}, {1, 0.5}, {2, 2.0}});
  std::vector<SnpSet> sets = {{0, {0, 1}}, {1, {2}}};
  const auto batch = BurdenStatistics(sets, scores, weights);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0], BurdenStatistic(sets[0], scores, weights));
  EXPECT_DOUBLE_EQ(batch[1], BurdenStatistic(sets[1], scores, weights));
}

TEST(SkatOTest, GridEndpointsAreBurdenAndSkat) {
  const auto grid = SkatORhoGrid();
  ASSERT_GE(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  const auto q = SkatOGridStatistics(100.0, 40.0, grid);
  EXPECT_DOUBLE_EQ(q.front(), 40.0);   // rho=0: pure SKAT
  EXPECT_DOUBLE_EQ(q.back(), 100.0);   // rho=1: pure burden
}

TEST(SkatOTest, PValueInUnitIntervalAndNullish) {
  // Null replicates from the same distribution as the observed grid: the
  // p-value should be unremarkable.
  Rng rng(7);
  auto make_grid = [&]() {
    const double burden = std::pow(SampleNormal(rng), 2);
    const double skat = std::pow(SampleNormal(rng), 2) + std::pow(SampleNormal(rng), 2);
    return SkatOGridStatistics(burden, skat, SkatORhoGrid());
  };
  const auto observed = make_grid();
  std::vector<std::vector<double>> replicates;
  for (int b = 0; b < 200; ++b) replicates.push_back(make_grid());
  const double p = SkatOPValue(observed, replicates);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(SkatOTest, DetectsSignalRegardlessOfDirectionMix) {
  // Observed grid far in the tail of the null replicates -> small p.
  Rng rng(8);
  std::vector<std::vector<double>> replicates;
  for (int b = 0; b < 99; ++b) {
    replicates.push_back(SkatOGridStatistics(std::fabs(SampleNormal(rng)),
                                             std::fabs(SampleNormal(rng)),
                                             SkatORhoGrid()));
  }
  const auto observed = SkatOGridStatistics(500.0, 500.0, SkatORhoGrid());
  EXPECT_DOUBLE_EQ(SkatOPValue(observed, replicates), 1.0 / 100.0);
}

TEST(SkatOTest, NoReplicatesGivesOne) {
  EXPECT_DOUBLE_EQ(SkatOPValue({1.0, 2.0}, {}), 1.0);
}

// -- Westfall-Young ------------------------------------------------------------

TEST(MaxTTest, SingleStepDefinition) {
  // Two hypotheses, three replicates with maxima {3, 5, 1}.
  const std::vector<double> observed = {4.0, 2.0};
  const std::vector<std::vector<double>> replicates = {
      {3.0, 1.0}, {5.0, 2.0}, {1.0, 0.5}};
  const auto adjusted = MaxTAdjustedPValues(observed, replicates);
  // T=4: maxima >= 4: {5} -> (1+1)/4 = 0.5. T=2: {3,5} -> 3/4.
  EXPECT_DOUBLE_EQ(adjusted[0], 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(adjusted[1], 3.0 / 4.0);
}

TEST(MaxTTest, AdjustedNeverBelowMarginalLevel) {
  Rng rng(9);
  const std::size_t m = 20;
  std::vector<double> observed;
  for (std::size_t j = 0; j < m; ++j) {
    observed.push_back(std::pow(SampleNormal(rng), 2));
  }
  std::vector<std::vector<double>> replicates;
  for (int b = 0; b < 100; ++b) {
    std::vector<double> row;
    for (std::size_t j = 0; j < m; ++j) {
      row.push_back(std::pow(SampleNormal(rng), 2));
    }
    replicates.push_back(std::move(row));
  }
  const auto single = MaxTAdjustedPValues(observed, replicates);
  const auto stepdown = StepDownMaxTAdjustedPValues(observed, replicates);
  for (std::size_t j = 0; j < m; ++j) {
    // Marginal empirical p-value for hypothesis j.
    std::size_t exceed = 0;
    for (const auto& row : replicates) {
      if (row[j] >= observed[j]) ++exceed;
    }
    const double marginal = (exceed + 1.0) / 101.0;
    EXPECT_GE(single[j] + 1e-12, marginal);
    EXPECT_GE(stepdown[j] + 1e-12, marginal);
    // Step-down is never more conservative than single-step.
    EXPECT_LE(stepdown[j], single[j] + 1e-12);
    EXPECT_LE(single[j], 1.0);
  }
}

TEST(MaxTTest, StepDownMonotoneInObservedRanking) {
  Rng rng(10);
  std::vector<double> observed = {10.0, 7.0, 3.0, 1.0};
  std::vector<std::vector<double>> replicates;
  for (int b = 0; b < 50; ++b) {
    std::vector<double> row;
    for (int j = 0; j < 4; ++j) row.push_back(std::fabs(SampleNormal(rng)) * 3);
    replicates.push_back(std::move(row));
  }
  const auto adjusted = StepDownMaxTAdjustedPValues(observed, replicates);
  for (int j = 1; j < 4; ++j) {
    EXPECT_LE(adjusted[j - 1], adjusted[j] + 1e-12);
  }
}

TEST(MaxTTest, StrongSignalSurvivesAdjustment) {
  Rng rng(11);
  std::vector<double> observed = {1000.0};  // one massive statistic
  std::vector<double> noise;
  std::vector<std::vector<double>> replicates;
  for (int b = 0; b < 99; ++b) {
    replicates.push_back({std::pow(SampleNormal(rng), 2)});
  }
  EXPECT_DOUBLE_EQ(MaxTAdjustedPValues(observed, replicates)[0], 0.01);
}

TEST(MaxTTest, EmptyFamily) {
  EXPECT_TRUE(MaxTAdjustedPValues({}, {{}}).empty());
  EXPECT_TRUE(StepDownMaxTAdjustedPValues({}, {}).empty());
}

}  // namespace
}  // namespace ss::stats
