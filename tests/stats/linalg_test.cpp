#include "stats/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

TEST(MatrixTest, GramMatrix) {
  Matrix x(3, 2);
  // Columns: [1,1,1] and [1,2,3].
  for (int r = 0; r < 3; ++r) {
    x.at(r, 0) = 1.0;
    x.at(r, 1) = r + 1.0;
  }
  const Matrix gram = x.Gram();
  EXPECT_DOUBLE_EQ(gram.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(gram.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(gram.at(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(gram.at(1, 1), 14.0);
}

TEST(MatrixTest, WeightedGram) {
  Matrix x(2, 1);
  x.at(0, 0) = 2.0;
  x.at(1, 0) = 3.0;
  std::vector<double> w = {0.5, 2.0};
  EXPECT_DOUBLE_EQ(x.Gram(&w).at(0, 0), 0.5 * 4.0 + 2.0 * 9.0);
}

TEST(MatrixTest, TransposeTimesAndTimes) {
  Matrix x(2, 2);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(1, 0) = 3;
  x.at(1, 1) = 4;
  EXPECT_EQ(x.Times({1.0, 1.0}), (std::vector<double>{3.0, 7.0}));
  EXPECT_EQ(x.TransposeTimes({1.0, 1.0}), (std::vector<double>{4.0, 6.0}));
}

TEST(CholeskyTest, FactorAndSolve) {
  // SPD matrix [[4,2],[2,3]]; solve A x = [8, 7] -> x = [1.3..., ...].
  Matrix a(2, 2);
  a.at(0, 0) = 4;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 3;
  auto chol = Cholesky::Factor(a);
  ASSERT_TRUE(chol.ok());
  const auto x = chol.value().Solve({8.0, 7.0});
  // Verify A x = b.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 8.0, 1e-12);
  EXPECT_NEAR(2 * x[0] + 3 * x[1], 7.0, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 2;
  a.at(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(Cholesky::Factor(a).ok());
}

TEST(CholeskyTest, RejectsCollinear) {
  // Duplicate columns -> singular Gram matrix.
  Matrix x(4, 2);
  for (int r = 0; r < 4; ++r) {
    x.at(r, 0) = r + 1.0;
    x.at(r, 1) = 2.0 * (r + 1.0);
  }
  EXPECT_FALSE(Cholesky::Factor(x.Gram()).ok());
}

TEST(OlsTest, RecoversExactLinearRelation) {
  // y = 2 + 3 t, no noise.
  Matrix x(5, 2);
  std::vector<double> y(5);
  for (int r = 0; r < 5; ++r) {
    x.at(r, 0) = 1.0;
    x.at(r, 1) = r;
    y[r] = 2.0 + 3.0 * r;
  }
  auto beta = OlsFit(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 2.0, 1e-10);
  EXPECT_NEAR(beta.value()[1], 3.0, 1e-10);
  for (double r : Residuals(x, y, beta.value())) EXPECT_NEAR(r, 0.0, 1e-10);
}

TEST(OlsTest, ResidualsOrthogonalToDesign) {
  Rng rng(3);
  const std::size_t n = 200;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t r = 0; r < n; ++r) {
    x.at(r, 0) = 1.0;
    x.at(r, 1) = SampleNormal(rng);
    x.at(r, 2) = SampleNormal(rng) * 2.0;
    y[r] = 1.0 + 0.5 * x.at(r, 1) - x.at(r, 2) + SampleNormal(rng);
  }
  auto beta = OlsFit(x, y);
  ASSERT_TRUE(beta.ok());
  const auto resid = Residuals(x, y, beta.value());
  const auto xtr = x.TransposeTimes(resid);
  for (double v : xtr) EXPECT_NEAR(v, 0.0, 1e-8);
}

TEST(LogisticTest, RecoversInterceptOnlyRate) {
  // With only an intercept, fitted p == observed case rate.
  std::vector<std::uint8_t> y;
  for (int i = 0; i < 100; ++i) y.push_back(i < 30 ? 1 : 0);
  Matrix x(100, 1, 1.0);
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().converged);
  EXPECT_NEAR(fit.value().fitted[0], 0.3, 1e-8);
}

TEST(LogisticTest, RecoversSlopeSign) {
  // Strongly separated-by-trend data: slope must come out positive and
  // substantial.
  Rng rng(9);
  const std::size_t n = 2000;
  Matrix x(n, 2);
  std::vector<std::uint8_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = SampleNormal(rng);
    x.at(i, 0) = 1.0;
    x.at(i, 1) = t;
    const double p = 1.0 / (1.0 + std::exp(-(0.5 + 1.5 * t)));
    y[i] = SampleBernoulli(rng, p) ? 1 : 0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().converged);
  EXPECT_NEAR(fit.value().beta[0], 0.5, 0.2);
  EXPECT_NEAR(fit.value().beta[1], 1.5, 0.3);
}

TEST(LogisticTest, ScoreEquationsHoldAtFit) {
  // X'(y - p̂) = 0 at the MLE.
  Rng rng(11);
  const std::size_t n = 300;
  Matrix x(n, 2);
  std::vector<std::uint8_t> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = 1.0;
    x.at(i, 1) = SampleNormal(rng);
    y[i] = SampleBernoulli(rng, 0.4) ? 1 : 0;
  }
  auto fit = LogisticRegression(x, y);
  ASSERT_TRUE(fit.ok());
  std::vector<double> resid(n);
  for (std::size_t i = 0; i < n; ++i) {
    resid[i] = static_cast<double>(y[i]) - fit.value().fitted[i];
  }
  for (double v : x.TransposeTimes(resid)) EXPECT_NEAR(v, 0.0, 1e-6);
}

TEST(DesignMatrixTest, PrependsIntercept) {
  const Matrix design = DesignMatrix(3, {{10.0, 20.0, 30.0}});
  EXPECT_EQ(design.rows(), 3u);
  EXPECT_EQ(design.cols(), 2u);
  for (int r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(design.at(r, 0), 1.0);
  EXPECT_DOUBLE_EQ(design.at(1, 1), 20.0);
}

TEST(DesignMatrixTest, NoCovariatesIsInterceptOnly) {
  const Matrix design = DesignMatrix(4, {});
  EXPECT_EQ(design.cols(), 1u);
}

}  // namespace
}  // namespace ss::stats
