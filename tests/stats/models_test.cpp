// Gaussian and Binomial score models, plus the model-generic ScoreEngine.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/cox_score.hpp"
#include "stats/linear_score.hpp"
#include "stats/logistic_score.hpp"
#include "stats/score_engine.hpp"
#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

TEST(LinearScoreTest, MeanComputed) {
  QuantitativeData data;
  data.value = {1.0, 2.0, 3.0, 6.0};
  EXPECT_DOUBLE_EQ(data.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(QuantitativeData{}.Mean(), 0.0);
}

TEST(LinearScoreTest, ContributionsAreGenotypeTimesResidual) {
  QuantitativeData data;
  data.value = {1.0, 3.0};  // mean 2
  const auto u = LinearScoreContributions(data, 2.0, {1, 2});
  EXPECT_DOUBLE_EQ(u[0], 1.0 * (1.0 - 2.0));
  EXPECT_DOUBLE_EQ(u[1], 2.0 * (3.0 - 2.0));
}

TEST(LinearScoreTest, ScoreSumsToZeroForConstantGenotype) {
  // Σ (Y_i - Ȳ) = 0, so any constant genotype scores exactly zero.
  Rng rng(3);
  QuantitativeData data;
  for (int i = 0; i < 100; ++i) data.value.push_back(SampleNormal(rng) * 5.0);
  const double mean = data.Mean();
  const auto u =
      LinearScoreContributions(data, mean, std::vector<std::uint8_t>(100, 2));
  EXPECT_NEAR(std::accumulate(u.begin(), u.end(), 0.0), 0.0, 1e-9);
}

TEST(LogisticScoreTest, CaseRate) {
  BinaryData data;
  data.value = {1, 0, 1, 1};
  EXPECT_DOUBLE_EQ(data.CaseRate(), 0.75);
  EXPECT_DOUBLE_EQ(BinaryData{}.CaseRate(), 0.0);
}

TEST(LogisticScoreTest, ContributionsAreGenotypeTimesResidual) {
  BinaryData data;
  data.value = {1, 0};
  const auto u = LogisticScoreContributions(data, 0.5, {2, 1});
  EXPECT_DOUBLE_EQ(u[0], 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(u[1], 1.0 * -0.5);
}

TEST(LogisticScoreTest, ScoreZeroForConstantGenotype) {
  Rng rng(4);
  BinaryData data;
  for (int i = 0; i < 200; ++i) {
    data.value.push_back(SampleBernoulli(rng, 0.4) ? 1 : 0);
  }
  const auto u = LogisticScoreContributions(
      data, data.CaseRate(), std::vector<std::uint8_t>(200, 1));
  EXPECT_NEAR(std::accumulate(u.begin(), u.end(), 0.0), 0.0, 1e-9);
}

// -- Phenotype / ScoreEngine --------------------------------------------------

TEST(PhenotypeTest, FactoriesSetModel) {
  EXPECT_EQ(Phenotype::Cox({}).model, ScoreModel::kCox);
  EXPECT_EQ(Phenotype::Gaussian({}).model, ScoreModel::kGaussian);
  EXPECT_EQ(Phenotype::Binomial({}).model, ScoreModel::kBinomial);
}

TEST(PhenotypeTest, ModelNames) {
  EXPECT_STREQ(ScoreModelName(ScoreModel::kCox), "Cox");
  EXPECT_STREQ(ScoreModelName(ScoreModel::kGaussian), "Gaussian");
  EXPECT_STREQ(ScoreModelName(ScoreModel::kBinomial), "Binomial");
}

TEST(PhenotypeTest, NCountsActiveArm) {
  QuantitativeData q;
  q.value = {1.0, 2.0, 3.0};
  EXPECT_EQ(Phenotype::Gaussian(q).n(), 3u);
  BinaryData b;
  b.value = {1};
  EXPECT_EQ(Phenotype::Binomial(b).n(), 1u);
}

TEST(PhenotypeTest, PermutedGaussian) {
  QuantitativeData q;
  q.value = {10.0, 20.0, 30.0};
  const Phenotype p = Phenotype::Gaussian(q).Permuted({2, 0, 1});
  EXPECT_EQ(p.quantitative.value, (std::vector<double>{30.0, 10.0, 20.0}));
}

TEST(PhenotypeTest, PermutedBinomial) {
  BinaryData b;
  b.value = {1, 0, 0};
  const Phenotype p = Phenotype::Binomial(b).Permuted({1, 2, 0});
  EXPECT_EQ(p.binary.value, (std::vector<std::uint8_t>{0, 0, 1}));
}

TEST(ScoreEngineTest, CoxMatchesDirectComputation) {
  Rng rng(7);
  SurvivalData data;
  std::vector<std::uint8_t> g;
  for (int i = 0; i < 80; ++i) {
    data.time.push_back(SampleExponential(rng, 0.1));
    data.event.push_back(SampleBernoulli(rng, 0.85) ? 1 : 0);
    g.push_back(static_cast<std::uint8_t>(SampleBinomial(rng, 2, 0.3)));
  }
  const ScoreEngine engine(Phenotype::Cox(data));
  const RiskSetIndex index(data);
  EXPECT_EQ(engine.Contributions(g), CoxScoreContributions(data, index, g));
}

TEST(ScoreEngineTest, GaussianMatchesDirectComputation) {
  QuantitativeData data;
  data.value = {1.0, 4.0, 2.0, 5.0};
  const ScoreEngine engine(Phenotype::Gaussian(data));
  EXPECT_EQ(engine.Contributions({0, 1, 2, 1}),
            LinearScoreContributions(data, data.Mean(), {0, 1, 2, 1}));
}

TEST(ScoreEngineTest, BinomialMatchesDirectComputation) {
  BinaryData data;
  data.value = {1, 0, 1, 0, 0};
  const ScoreEngine engine(Phenotype::Binomial(data));
  EXPECT_EQ(engine.Contributions({2, 2, 0, 1, 1}),
            LogisticScoreContributions(data, data.CaseRate(), {2, 2, 0, 1, 1}));
}

TEST(ScoreEngineTest, MoveOnlyButBroadcastable) {
  // The engine is moved (not copied) into shared ownership — compile-time
  // behaviour exercised by the pipeline; here we just verify move works.
  SurvivalData data;
  data.time = {1.0, 2.0};
  data.event = {1, 1};
  ScoreEngine engine(Phenotype::Cox(data));
  ScoreEngine moved = std::move(engine);
  EXPECT_EQ(moved.n(), 2u);
}

}  // namespace
}  // namespace ss::stats
