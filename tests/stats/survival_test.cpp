#include "stats/survival.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "support/distributions.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

TEST(SurvivalDataTest, PairsRoundTrip) {
  const std::vector<PhenotypePair> pairs = {
      {5.0, 1}, {3.0, 0}, {7.5, 1}};
  const SurvivalData data = SurvivalData::FromPairs(pairs);
  EXPECT_EQ(data.n(), 3u);
  EXPECT_EQ(data.ToPairs(), pairs);
}

TEST(SurvivalDataTest, PermutedMovesPairsTogether) {
  SurvivalData data;
  data.time = {1.0, 2.0, 3.0};
  data.event = {1, 0, 1};
  const SurvivalData permuted = data.Permuted({2, 0, 1});
  EXPECT_EQ(permuted.time, (std::vector<double>{3.0, 1.0, 2.0}));
  EXPECT_EQ(permuted.event, (std::vector<std::uint8_t>{1, 1, 0}));
}

TEST(SurvivalDataTest, PermutationPreservesMultiset) {
  Rng rng(5);
  SurvivalData data;
  for (int i = 0; i < 50; ++i) {
    data.time.push_back(SampleExponential(rng, 0.1));
    data.event.push_back(SampleBernoulli(rng, 0.8) ? 1 : 0);
  }
  const auto perm = SamplePermutation(rng, 50);
  SurvivalData permuted = data.Permuted(perm);
  std::vector<PhenotypePair> a = data.ToPairs();
  std::vector<PhenotypePair> b = permuted.ToPairs();
  auto cmp = [](const PhenotypePair& x, const PhenotypePair& y) {
    return x.time < y.time || (x.time == y.time && x.event < y.event);
  };
  std::sort(a.begin(), a.end(), cmp);
  std::sort(b.begin(), b.end(), cmp);
  EXPECT_EQ(a, b);
}

TEST(RiskSetIndexTest, RiskCountsMatchDefinition) {
  SurvivalData data;
  data.time = {4.0, 1.0, 3.0, 2.0};
  data.event = {1, 1, 1, 1};
  const RiskSetIndex index(data);
  // b_i = #{l : Y_l >= Y_i}
  EXPECT_EQ(index.risk_count(0), 1u);  // only time 4 >= 4
  EXPECT_EQ(index.risk_count(1), 4u);  // all >= 1
  EXPECT_EQ(index.risk_count(2), 2u);  // 4, 3
  EXPECT_EQ(index.risk_count(3), 3u);  // 4, 3, 2
}

TEST(RiskSetIndexTest, TiesIncludedInRiskSet) {
  SurvivalData data;
  data.time = {2.0, 2.0, 1.0};
  data.event = {1, 1, 1};
  const RiskSetIndex index(data);
  EXPECT_EQ(index.risk_count(0), 2u);  // both tied 2.0 values
  EXPECT_EQ(index.risk_count(1), 2u);
  EXPECT_EQ(index.risk_count(2), 3u);
}

TEST(RiskSetIndexTest, OrderSortedDescending) {
  SurvivalData data;
  data.time = {1.0, 5.0, 3.0};
  data.event = {1, 1, 1};
  const RiskSetIndex index(data);
  EXPECT_EQ(index.order(), (std::vector<std::uint32_t>{1, 2, 0}));
}

TEST(RiskSetIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(9);
  SurvivalData data;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    // Coarse times to force many ties.
    data.time.push_back(static_cast<double>(rng.NextBounded(20)));
    data.event.push_back(1);
  }
  const RiskSetIndex index(data);
  for (int i = 0; i < n; ++i) {
    std::uint32_t brute = 0;
    for (int l = 0; l < n; ++l) {
      if (data.time[l] >= data.time[i]) ++brute;
    }
    EXPECT_EQ(index.risk_count(i), brute) << "patient " << i;
  }
}

TEST(RiskSetIndexTest, SingletonAndEmpty) {
  SurvivalData one;
  one.time = {1.0};
  one.event = {1};
  const RiskSetIndex index(one);
  EXPECT_EQ(index.n(), 1u);
  EXPECT_EQ(index.risk_count(0), 1u);

  const RiskSetIndex empty((SurvivalData()));
  EXPECT_EQ(empty.n(), 0u);
}

}  // namespace
}  // namespace ss::stats
