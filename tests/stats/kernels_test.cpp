// Differential battery for the runtime-dispatched SIMD kernels: every
// dispatch level this CPU can execute must produce output bitwise equal
// to the scalar reference kernel, on random inputs across awkward sizes
// (vector-width multiples, remainders, tiny cases).
#include "stats/kernels/kernels.hpp"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/cox_score.hpp"
#include "stats/resampling.hpp"
#include "stats/survival.hpp"
#include "support/rng.hpp"

namespace ss::stats {
namespace {

using kernels::DispatchLevel;

std::uint64_t Bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Forces a dispatch level for one test, restoring the previous level on
/// scope exit (the level is process-global).
class ScopedDispatchLevel {
 public:
  explicit ScopedDispatchLevel(DispatchLevel level)
      : saved_(kernels::ActiveDispatchLevel()) {
    kernels::SetDispatchLevel(level);
  }
  ~ScopedDispatchLevel() { kernels::SetDispatchLevel(saved_); }

 private:
  DispatchLevel saved_;
};

std::vector<DispatchLevel> ExecutableLevels() {
  std::vector<DispatchLevel> levels;
  const int best = static_cast<int>(kernels::BestSupportedLevel());
  for (int level = 0; level <= best; ++level) {
    levels.push_back(static_cast<DispatchLevel>(level));
  }
  return levels;
}

std::vector<double> RandomDoubles(Rng& rng, std::size_t count) {
  std::vector<double> values(count);
  for (double& v : values) v = rng.NextDouble() * 8.0 - 4.0;
  return values;
}

TEST(KernelDispatchTest, ParseAndNameRoundTrip) {
  for (const char* name : {"scalar", "sse2", "avx2"}) {
    Result<DispatchLevel> level = kernels::ParseDispatchLevel(name);
    ASSERT_TRUE(level.ok()) << name;
    EXPECT_STREQ(kernels::DispatchLevelName(level.value()), name);
  }
  EXPECT_FALSE(kernels::ParseDispatchLevel("avx512").ok());
  EXPECT_FALSE(kernels::ParseDispatchLevel("").ok());
}

TEST(KernelDispatchTest, SetClampsToSupportedAndSticks) {
  const DispatchLevel saved = kernels::ActiveDispatchLevel();
  const DispatchLevel installed =
      kernels::SetDispatchLevel(DispatchLevel::kAvx2);
  EXPECT_LE(static_cast<int>(installed),
            static_cast<int>(kernels::BestSupportedLevel()));
  EXPECT_EQ(kernels::ActiveDispatchLevel(), installed);
  EXPECT_EQ(kernels::SetDispatchLevel(DispatchLevel::kScalar),
            DispatchLevel::kScalar);
  EXPECT_EQ(kernels::ActiveDispatchLevel(), DispatchLevel::kScalar);
  kernels::SetDispatchLevel(saved);
}

TEST(KernelDispatchTest, ActiveLevelDefaultsToSupported) {
  EXPECT_LE(static_cast<int>(kernels::ActiveDispatchLevel()),
            static_cast<int>(kernels::BestSupportedLevel()));
}

TEST(KernelDifferentialTest, BatchedMacBitwiseEqualAcrossLevels) {
  const kernels::KernelTable& scalar =
      kernels::KernelsFor(DispatchLevel::kScalar);
  Rng rng(20160801);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 16u, 33u, 67u}) {
    for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 8u, 15u, 16u, 17u, 37u}) {
      const std::vector<double> u = RandomDoubles(rng, n);
      const std::vector<double> zblock = RandomDoubles(rng, n * count);
      std::vector<double> expected(count);
      scalar.batched_mac(u.data(), n, zblock.data(), count, expected.data());
      for (DispatchLevel level : ExecutableLevels()) {
        std::vector<double> got(count, -1.0);
        kernels::KernelsFor(level).batched_mac(u.data(), n, zblock.data(),
                                               count, got.data());
        for (std::size_t r = 0; r < count; ++r) {
          ASSERT_EQ(Bits(got[r]), Bits(expected[r]))
              << "level=" << kernels::DispatchLevelName(level) << " n=" << n
              << " count=" << count << " r=" << r;
        }
      }
    }
  }
}

TEST(KernelDifferentialTest, CoxScanBitwiseEqualAcrossLevels) {
  const kernels::KernelTable& scalar =
      kernels::KernelsFor(DispatchLevel::kScalar);
  Rng rng(20160802);
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u, 31u, 64u, 129u}) {
    std::vector<std::uint8_t> event(n);
    std::vector<std::uint8_t> genotypes(n);
    std::vector<std::uint32_t> prefix_end(n);
    std::vector<double> prefix(n + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      event[i] = static_cast<std::uint8_t>(rng.NextBounded(2));
      genotypes[i] = static_cast<std::uint8_t>(rng.NextBounded(3));
      prefix_end[i] = static_cast<std::uint32_t>(1 + rng.NextBounded(n));
    }
    for (std::size_t k = 0; k < n; ++k) {
      prefix[k + 1] = prefix[k] + static_cast<double>(rng.NextBounded(3));
    }
    std::vector<double> expected(n);
    scalar.cox_scan(event.data(), genotypes.data(), prefix.data(),
                    prefix_end.data(), n, expected.data());
    for (DispatchLevel level : ExecutableLevels()) {
      std::vector<double> got(n, -1.0);
      kernels::KernelsFor(level).cox_scan(event.data(), genotypes.data(),
                                          prefix.data(), prefix_end.data(), n,
                                          got.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(Bits(got[i]), Bits(expected[i]))
            << "level=" << kernels::DispatchLevelName(level) << " n=" << n
            << " i=" << i;
      }
    }
  }
}

TEST(KernelDifferentialTest, SkatFoldsBitwiseEqualAcrossLevels) {
  const kernels::KernelTable& scalar =
      kernels::KernelsFor(DispatchLevel::kScalar);
  Rng rng(20160803);
  for (std::size_t count : {1u, 2u, 3u, 4u, 5u, 8u, 15u, 16u, 17u, 64u}) {
    const std::vector<double> scores = RandomDoubles(rng, count);
    const std::vector<double> seed_acc = RandomDoubles(rng, count);
    const double w = 0.25 + rng.NextDouble();
    std::vector<double> expected_acc = seed_acc;
    scalar.skat_fold(scores.data(), count, w * w, expected_acc.data());
    std::vector<double> expected_skat = seed_acc;
    std::vector<double> expected_burden = seed_acc;
    scalar.skat_burden_fold(scores.data(), count, w, w * w,
                            expected_skat.data(), expected_burden.data());
    for (DispatchLevel level : ExecutableLevels()) {
      const kernels::KernelTable& table = kernels::KernelsFor(level);
      std::vector<double> acc = seed_acc;
      table.skat_fold(scores.data(), count, w * w, acc.data());
      std::vector<double> skat = seed_acc;
      std::vector<double> burden = seed_acc;
      table.skat_burden_fold(scores.data(), count, w, w * w, skat.data(),
                             burden.data());
      for (std::size_t r = 0; r < count; ++r) {
        ASSERT_EQ(Bits(acc[r]), Bits(expected_acc[r]))
            << "level=" << kernels::DispatchLevelName(level) << " r=" << r;
        ASSERT_EQ(Bits(skat[r]), Bits(expected_skat[r]))
            << "level=" << kernels::DispatchLevelName(level) << " r=" << r;
        ASSERT_EQ(Bits(burden[r]), Bits(expected_burden[r]))
            << "level=" << kernels::DispatchLevelName(level) << " r=" << r;
      }
    }
  }
}

TEST(KernelDifferentialTest, RoutedBatchedScoresMatchPerReplicateOracle) {
  // The public entry point, under every level: each batched score must be
  // bitwise equal to the serial one-replicate MAC.
  Rng rng(20160804);
  const std::size_t n = 61;
  const std::size_t count = 23;
  const std::vector<double> contributions = RandomDoubles(rng, n);
  const std::vector<double> zblock = RandomDoubles(rng, n * count);
  for (DispatchLevel level : ExecutableLevels()) {
    ScopedDispatchLevel guard(level);
    std::vector<double> scores;
    BatchedReplicateScores(contributions, zblock.data(), count, &scores);
    ASSERT_EQ(scores.size(), count);
    for (std::size_t r = 0; r < count; ++r) {
      // Patient-major extraction of replicate r's multipliers.
      std::vector<double> row(n);
      for (std::size_t i = 0; i < n; ++i) row[i] = zblock[i * count + r];
      ASSERT_EQ(Bits(scores[r]), Bits(MonteCarloReplicateScore(contributions, row)))
          << "level=" << kernels::DispatchLevelName(level) << " r=" << r;
    }
  }
}

TEST(KernelDifferentialTest, CoxContributionsMatchNaiveUnderEveryLevel) {
  // End-to-end through the real survival API: the routed scan must agree
  // with the O(n²) oracle at every dispatch level.
  Rng rng(20160805);
  const std::size_t n = 83;
  SurvivalData data;
  std::vector<std::uint8_t> genotypes(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.time.push_back(1.0 + rng.NextDouble() * 9.0);
    data.event.push_back(static_cast<std::uint8_t>(rng.NextBounded(2)));
    genotypes[i] = static_cast<std::uint8_t>(rng.NextBounded(3));
  }
  const RiskSetIndex index(data);
  const std::vector<double> naive = CoxScoreContributionsNaive(data, genotypes);
  for (DispatchLevel level : ExecutableLevels()) {
    ScopedDispatchLevel guard(level);
    const std::vector<double> fast =
        CoxScoreContributions(data, index, genotypes);
    ASSERT_EQ(fast.size(), naive.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-12)
          << "level=" << kernels::DispatchLevelName(level) << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace ss::stats
