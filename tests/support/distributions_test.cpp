#include "support/distributions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/summary.hpp"

namespace ss {
namespace {

TEST(ExponentialTest, NonNegative) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(SampleExponential(rng, 0.5), 0.0);
  }
}

TEST(ExponentialTest, MeanMatchesRate) {
  // The paper's survival times: Exp(1/12), mean 12 months.
  Rng rng(2);
  std::vector<double> draws;
  for (int i = 0; i < 200000; ++i) {
    draws.push_back(SampleExponential(rng, 1.0 / 12.0));
  }
  EXPECT_NEAR(Mean(draws), 12.0, 0.15);
}

TEST(ExponentialTest, MedianMatchesTheory) {
  Rng rng(3);
  std::vector<double> draws;
  for (int i = 0; i < 100000; ++i) draws.push_back(SampleExponential(rng, 2.0));
  // Median of Exp(rate) = ln 2 / rate.
  EXPECT_NEAR(Quantile(draws, 0.5), std::log(2.0) / 2.0, 0.01);
}

TEST(BernoulliTest, RateMatches) {
  // The paper's event indicator: Bernoulli(0.85).
  Rng rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += SampleBernoulli(rng, 0.85) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.85, 0.01);
}

TEST(BernoulliTest, DegenerateRates) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SampleBernoulli(rng, 0.0));
    EXPECT_TRUE(SampleBernoulli(rng, 1.0));
  }
}

TEST(BinomialTest, SupportAndMoments) {
  // The paper's genotypes: Binomial(2, rho).
  Rng rng(6);
  const double rho = 0.3;
  std::vector<double> draws;
  for (int i = 0; i < 100000; ++i) {
    const int g = SampleBinomial(rng, 2, rho);
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 2);
    draws.push_back(g);
  }
  const Summary s = Summarize(draws);
  EXPECT_NEAR(s.mean, 2 * rho, 0.02);                       // mean np
  EXPECT_NEAR(s.stdev, std::sqrt(2 * rho * (1 - rho)), 0.02);  // sd
}

TEST(BinomialTest, ZeroTrials) {
  Rng rng(7);
  EXPECT_EQ(SampleBinomial(rng, 0, 0.5), 0);
}

TEST(NormalTest, FirstTwoMoments) {
  Rng rng(8);
  std::vector<double> draws;
  for (int i = 0; i < 200000; ++i) draws.push_back(SampleNormal(rng));
  const Summary s = Summarize(draws);
  EXPECT_NEAR(s.mean, 0.0, 0.01);
  EXPECT_NEAR(s.stdev, 1.0, 0.01);
}

TEST(NormalTest, TailProbability) {
  Rng rng(9);
  int beyond2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(SampleNormal(rng)) > 1.959964) ++beyond2;
  }
  EXPECT_NEAR(static_cast<double>(beyond2) / n, 0.05, 0.005);
}

TEST(NormalVectorTest, SizeAndDeterminism) {
  Rng a(10);
  Rng b(10);
  const auto va = SampleNormalVector(a, 1000);
  const auto vb = SampleNormalVector(b, 1000);
  ASSERT_EQ(va.size(), 1000u);
  EXPECT_EQ(va, vb);
}

TEST(PermutationTest, IsAPermutation) {
  Rng rng(11);
  const auto perm = SamplePermutation(rng, 1000);
  std::vector<std::uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(PermutationTest, NotIdentityForLargeN) {
  Rng rng(12);
  const auto perm = SamplePermutation(rng, 100);
  std::vector<std::uint32_t> identity(100);
  std::iota(identity.begin(), identity.end(), 0u);
  EXPECT_NE(perm, identity);
}

TEST(PermutationTest, UniformFirstElement) {
  // Every value should appear in position 0 about equally often.
  std::vector<int> counts(5, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 1000);
    ++counts[SamplePermutation(rng, 5)[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 4000, 400);
}

TEST(ShuffleInPlaceTest, PreservesMultiset) {
  Rng rng(13);
  std::vector<int> items = {1, 1, 2, 3, 5, 8, 13};
  std::vector<int> original = items;
  ShuffleInPlace(rng, items);
  std::sort(items.begin(), items.end());
  std::sort(original.begin(), original.end());
  EXPECT_EQ(items, original);
}

TEST(ShuffleInPlaceTest, EmptyAndSingleton) {
  Rng rng(14);
  std::vector<int> empty;
  ShuffleInPlace(rng, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  ShuffleInPlace(rng, one);
  EXPECT_EQ(one, std::vector<int>{42});
}

/// Kolmogorov-Smirnov-style sweep: exponential CDF match at several rates.
class ExponentialSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialSweep, CdfMatches) {
  const double rate = GetParam();
  Rng rng(static_cast<std::uint64_t>(rate * 1000) + 17);
  const int n = 50000;
  int below_mean = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleExponential(rng, rate) < 1.0 / rate) ++below_mean;
  }
  // P(X < mean) = 1 - e^-1 ≈ 0.632.
  EXPECT_NEAR(static_cast<double>(below_mean) / n, 1.0 - std::exp(-1.0), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Rates, ExponentialSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 1.0 / 12.0));

}  // namespace
}  // namespace ss
