#include "support/option_map.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ss::support {
namespace {

/// Builds an OptionMap from a token list (argv[0] is a fake program name).
OptionMap Parse(std::vector<std::string> tokens, int begin = 1) {
  std::vector<char*> argv;
  static std::string program = "test";
  argv.push_back(program.data());
  for (std::string& token : tokens) argv.push_back(token.data());
  return OptionMap(static_cast<int>(argv.size()), argv.data(), begin);
}

TEST(OptionMapTest, TypedGettersAndFallbacks) {
  std::vector<std::string> tokens = {"snps=120", "rate=0.25", "name=alpha",
                                     "verbose=1"};
  const OptionMap args = Parse(tokens);
  EXPECT_EQ(args.GetU64("snps", 7), 120u);
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 1.0), 0.25);
  EXPECT_EQ(args.GetStr("name", "beta"), "alpha");
  EXPECT_TRUE(args.GetBool("verbose", false));
  EXPECT_EQ(args.GetU64("missing", 42), 42u);
  EXPECT_EQ(args.GetStr("missing", "beta"), "beta");
  EXPECT_TRUE(args.Has("snps"));
  EXPECT_FALSE(args.Has("missing"));
}

TEST(OptionMapTest, PositionalTokensCollected) {
  const OptionMap args = Parse({"run", "snps=10", "fast"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"run", "fast"}));
}

TEST(OptionMapTest, BeginSkipsSubcommand) {
  const OptionMap args = Parse({"skat", "reps=5"}, /*begin=*/2);
  EXPECT_EQ(args.GetU64("reps", 0), 5u);
  EXPECT_TRUE(args.positional().empty());
}

TEST(OptionMapTest, MalformedValuesFallBack) {
  const OptionMap args = Parse({"snps=abc", "neg=-3", "rate=xyz"});
  EXPECT_EQ(args.GetU64("snps", 9), 9u);
  EXPECT_EQ(args.GetU64("neg", 9), 9u);  // negative is malformed for U64
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.5), 0.5);
  EXPECT_GE(args.WarnUnknownKeys("test"), 3u);
}

TEST(OptionMapTest, UnknownKeysAreOnlyUnreadOnes) {
  const OptionMap args = Parse({"snps=10", "snsp=20"});
  EXPECT_EQ(args.GetU64("snps", 0), 10u);
  const std::vector<std::string> unknown = args.UnknownKeys();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "snsp");
  // One diagnostic, with a nearest-key suggestion (exercised for output).
  EXPECT_EQ(args.WarnUnknownKeys("test"), 1u);
}

TEST(OptionMapTest, SetInsertsAndOverwrites) {
  OptionMap args;
  args.Set("reps", "19");
  EXPECT_EQ(args.GetU64("reps", 0), 19u);
  args.Set("reps", "21");
  EXPECT_EQ(args.GetU64("reps", 0), 21u);
  EXPECT_EQ(args.WarnUnknownKeys("test"), 0u);
}

TEST(OptionMapTest, ToleratesEmptyArgv) {
  const OptionMap args(0, nullptr);
  EXPECT_EQ(args.GetU64("anything", 3), 3u);
  EXPECT_TRUE(args.positional().empty());
}

}  // namespace
}  // namespace ss::support
