// Lock-order analyzer tests: ABBA inversion detection (with both
// acquisition chains in the report), same-rank and recursive acquisition
// handling, rank-violation warnings, clean-run acyclicity, and the
// release-build passthrough contract.
#include "support/ranked_mutex.hpp"

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <memory>
#include <thread>

#include "support/thread_pool.hpp"

namespace ss::support {
namespace {

using lock_order::GetStats;
using lock_order::HeldByThisThread;
using lock_order::ResetForTest;

// Test-only rank classes, far above the project table so test edges can
// never alias a real subsystem's rank.
constexpr LockRank kTestLow{"test.low", 1000};
constexpr LockRank kTestHigh{"test.high", 1010};
constexpr LockRank kTestPeerA{"test.peer_a", 1020};
constexpr LockRank kTestPeerB{"test.peer_b", 1020};  // same rank as peer_a

TEST(RankedMutexTest, PassthroughWhenAnalyzerOff) {
  if (lock_order::CompiledIn() && lock_order::RuntimeEnabled()) {
    GTEST_SKIP() << "analyzer active; passthrough covered by release builds";
  }
  RankedMutex mutex(kTestLow);
  mutex.lock();
  EXPECT_EQ(HeldByThisThread(), 0);  // nothing tracked
  mutex.unlock();
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();
  const lock_order::Stats stats = GetStats();
  EXPECT_EQ(stats.acquisitions, 0u);
  EXPECT_EQ(stats.graph_edges, 0);
  EXPECT_TRUE(stats.acyclic);
}

TEST(RankedMutexTest, TracksHeldStackAndGraph) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ResetForTest();
  RankedMutex low(kTestLow);
  RankedMutex high(kTestHigh);
  low.lock();
  EXPECT_EQ(HeldByThisThread(), 1);
  high.lock();
  EXPECT_EQ(HeldByThisThread(), 2);
  high.unlock();
  low.unlock();
  EXPECT_EQ(HeldByThisThread(), 0);
  const lock_order::Stats stats = GetStats();
  EXPECT_EQ(stats.acquisitions, 2u);
  EXPECT_EQ(stats.graph_nodes, 2);
  EXPECT_EQ(stats.graph_edges, 1);  // low -> high
  EXPECT_EQ(stats.rank_violations, 0u);
  EXPECT_TRUE(stats.acyclic);
}

TEST(RankedMutexTest, TryLockTracksLikeLock) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ResetForTest();
  RankedMutex low(kTestLow);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(HeldByThisThread(), 1);
  low.unlock();
  EXPECT_EQ(HeldByThisThread(), 0);
  EXPECT_EQ(GetStats().acquisitions, 1u);
}

TEST(RankedMutexTest, RankViolationWithoutCycleWarnsButLives) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ResetForTest();
  RankedMutex low(kTestLow);
  RankedMutex high(kTestHigh);
  // high -> low inverts the declared order, but the opposite order has
  // never been recorded, so this is a warning, not an abort.
  high.lock();
  low.lock();
  low.unlock();
  high.unlock();
  const lock_order::Stats stats = GetStats();
  EXPECT_EQ(stats.rank_violations, 1u);
  EXPECT_TRUE(stats.acyclic);  // a single edge cannot cycle
}

TEST(RankedMutexDeathTest, AbbaInversionAbortsWithCurrentChain) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The full ABBA runs inside the death-test child so the parent's graph
  // stays clean. One thread suffices: the graph remembers the first
  // order and the opposite order completes the cycle immediately.
  EXPECT_DEATH(
      {
        ResetForTest();
        RankedMutex low(kTestLow);
        RankedMutex high(kTestHigh);
        low.lock();
        high.lock();  // records low -> high
        high.unlock();
        low.unlock();
        high.lock();
        low.lock();  // cycle: abort before this can deadlock anyone
      },
      "potential deadlock.*test\\.low");
}

TEST(RankedMutexDeathTest, AbbaReportPrintsRecordedOppositeChain) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Same scenario; this run pins the OTHER half of the report — the
  // previously recorded chain that completes the cycle.
  EXPECT_DEATH(
      {
        ResetForTest();
        RankedMutex low(kTestLow);
        RankedMutex high(kTestHigh);
        low.lock();
        high.lock();
        high.unlock();
        low.unlock();
        high.lock();
        low.lock();
      },
      "first observed as: \"test\\.low\"\\(1000\\) -> \"test\\.high\"\\(1010\\)");
}

TEST(RankedMutexDeathTest, SameRankSecondNestingAborts) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Same-rank instances may never nest. The first nesting records a
  // self-edge (and a warning); the second finds that self-edge as a
  // cycle — by-rank bookkeeping cannot tell instance orders apart, and
  // the contract says this pattern is illegal either way.
  EXPECT_DEATH(
      {
        ResetForTest();
        RankedMutex a(kTestPeerA);
        RankedMutex b(kTestPeerB);
        a.lock();
        b.lock();
        b.unlock();
        a.unlock();
        a.lock();
        b.lock();
      },
      "potential deadlock.*test\\.peer");
}

TEST(RankedMutexDeathTest, RecursiveAcquisitionAborts) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ResetForTest();
        RankedMutex mutex(kTestLow);
        mutex.lock();
        mutex.lock();
      },
      "recursive acquisition");
}

TEST(RankedMutexTest, CleanMultithreadedRunStaysAcyclic) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ResetForTest();
  RankedMutex low(kTestLow);
  RankedMutex high(kTestHigh);
  int shared = 0;
  {
    ThreadPool pool(4);
    // Everyone nests in rank order; the pool's own mutex (and the
    // ParallelFor error mutex) join the graph underneath.
    pool.ParallelFor(0, 64, [&](std::size_t) {
      MutexLock outer(low);
      MutexLock inner(high);
      ++shared;
      EXPECT_GE(HeldByThisThread(), 2);
    });
    // Workers park with nothing held.
    pool.ParallelFor(0, 4, [&](std::size_t) {
      EXPECT_EQ(HeldByThisThread(), 0);
    });
  }
  // Pool shut down: the driver's held stack must be empty too.
  EXPECT_EQ(HeldByThisThread(), 0);
  EXPECT_EQ(shared, 64);
  const lock_order::Stats stats = GetStats();
  EXPECT_TRUE(stats.acyclic);
  EXPECT_EQ(stats.rank_violations, 0u);
  EXPECT_GE(stats.graph_edges, 1);
  EXPECT_GE(stats.acquisitions, 128u);
}

// Regression: ~ThreadPool used to destroy abandoned queued closures while
// still holding the pool mutex. A closure owning a resource whose
// destructor takes another lock would then nest pool-mutex -> that lock,
// inverting the declared order (and risking real deadlock if the dtor
// ever reached back into a pool API). The fix swaps the queue out under
// the lock and destroys it after release, so destructors run with the
// pool's held-stack contribution at zero.
TEST(RankedMutexTest, PoolDestructorRunsAbandonedDtorsUnlocked) {
  struct Sentinel {
    std::atomic<int>* held_at_destruction;
    ~Sentinel() {
      held_at_destruction->fetch_add(
          static_cast<int>(HeldByThisThread()), std::memory_order_relaxed);
    }
  };
  std::atomic<int> held{0};
  {
    ThreadPool pool(1);
    // Park the lone worker so the second submission stays queued and is
    // abandoned (destroyed, never run) by the destructor.
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    });
    auto sentinel = std::make_shared<Sentinel>();
    sentinel->held_at_destruction = &held;
    pool.Submit([sentinel] {});
    sentinel.reset();
  }
  // 0 locks held when the abandoned closure's captures were destroyed.
  EXPECT_EQ(held.load(std::memory_order_relaxed), 0);
}

TEST(RankedMutexTest, ScopedGuardsDriveTheHeldStack) {
  if (!lock_order::RuntimeEnabled()) GTEST_SKIP() << "analyzer off";
  ResetForTest();
  RankedMutex low(kTestLow);
  {
    MutexLock lock(low);
    EXPECT_EQ(HeldByThisThread(), 1);
  }
  EXPECT_EQ(HeldByThisThread(), 0);
  {
    UniqueLock lock(low);
    EXPECT_EQ(HeldByThisThread(), 1);
    // The BasicLockable surface a condition_variable_any wait exercises.
    lock.unlock();
    EXPECT_EQ(HeldByThisThread(), 0);
    lock.lock();
    EXPECT_EQ(HeldByThisThread(), 1);
  }
  EXPECT_EQ(HeldByThisThread(), 0);
}

}  // namespace
}  // namespace ss::support
