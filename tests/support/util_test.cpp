// Tests for the small support utilities: summary statistics, ASCII table,
// binary serialization, string parsing, stopwatch, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "support/binary_io.hpp"
#include "support/log.hpp"
#include "support/stopwatch.hpp"
#include "support/string_util.hpp"
#include "support/summary.hpp"
#include "support/table.hpp"

namespace ss {
namespace {

// -- Summary ----------------------------------------------------------------

TEST(SummaryTest, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stdev, 0.0);
}

TEST(SummaryTest, SingleValue) {
  const Summary s = Summarize({3.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.mean, 3.5);
  EXPECT_EQ(s.stdev, 0.0);
  EXPECT_EQ(s.min, 3.5);
  EXPECT_EQ(s.max, 3.5);
}

TEST(SummaryTest, KnownValues) {
  // Values 2,4,4,4,5,5,7,9: mean 5, sample sd sqrt(32/7).
  const Summary s = Summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stdev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min, 2.0);
  EXPECT_EQ(s.max, 9.0);
}

TEST(QuantileTest, MedianAndExtremes) {
  std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 2.0), 2.0);
}

// -- Table --------------------------------------------------------------------

TEST(TableTest, RendersHeadersAndRows) {
  Table table("Demo", {"a", "bb"});
  table.AddRow({"1", "2"});
  table.AddRow({"333", "4"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 333 |"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, AlignsColumns) {
  Table table("T", {"x"});
  table.AddRow({"longvalue"});
  const std::string out = table.ToString();
  // Header cell padded to the widest row.
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

// -- BinaryWriter / BinaryReader ---------------------------------------------

TEST(BinaryIoTest, RoundTripPrimitives) {
  BinaryWriter writer;
  writer.WriteU8(7);
  writer.WriteU32(123456);
  writer.WriteU64(1ULL << 60);
  writer.WriteI64(-42);
  writer.WriteDouble(2.718281828);
  writer.WriteString("hello world");

  BinaryReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8(), 7);
  EXPECT_EQ(reader.ReadU32(), 123456u);
  EXPECT_EQ(reader.ReadU64(), 1ULL << 60);
  EXPECT_EQ(reader.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble(), 2.718281828);
  EXPECT_EQ(reader.ReadString(), "hello world");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BinaryIoTest, RoundTripPodVector) {
  BinaryWriter writer;
  std::vector<std::uint32_t> data = {1, 1, 2, 3, 5, 8};
  writer.WritePodVector(data);
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadPodVector<std::uint32_t>(), data);
}

TEST(BinaryIoTest, EmptyStringAndVector) {
  BinaryWriter writer;
  writer.WriteString("");
  writer.WritePodVector(std::vector<double>{});
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadString(), "");
  EXPECT_TRUE(reader.ReadPodVector<double>().empty());
}

TEST(ChecksumTest, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
  const std::uint64_t before = Checksum(bytes);
  bytes[2] ^= 0x01;
  EXPECT_NE(Checksum(bytes), before);
}

TEST(ChecksumTest, EmptyIsStable) {
  EXPECT_EQ(Checksum({}), Checksum({}));
}

// -- string_util ---------------------------------------------------------------

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(ParseTest, IntegersStrict) {
  std::int64_t i = 0;
  EXPECT_TRUE(ParseI64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_TRUE(ParseI64(" 7 ", &i));  // trimmed
  EXPECT_FALSE(ParseI64("7x", &i));
  EXPECT_FALSE(ParseI64("", &i));

  std::uint32_t u = 0;
  EXPECT_TRUE(ParseU32("4294967295", &u));
  EXPECT_FALSE(ParseU32("4294967296", &u));  // overflow
  EXPECT_FALSE(ParseU32("-1", &u));
}

TEST(ParseTest, Doubles) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("1e-3", &d));
  EXPECT_DOUBLE_EQ(d, 1e-3);
  EXPECT_FALSE(ParseDouble("abc", &d));
  EXPECT_FALSE(ParseDouble("1.5extra", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

// -- Stopwatch -------------------------------------------------------------------

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(sw.ElapsedSeconds(), 0.015);
  EXPECT_GE(sw.ElapsedNanos(), 15'000'000);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.015);
}

// -- Log ---------------------------------------------------------------------------

TEST(LogTest, LevelFiltering) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Below-threshold macro bodies must not even evaluate their stream args.
  bool evaluated = false;
  auto touch = [&]() {
    evaluated = true;
    return "x";
  };
  SS_LOG(kDebug, "test") << touch();
  EXPECT_FALSE(evaluated);
  SetLogLevel(old);
}

}  // namespace
}  // namespace ss
