// Semantics of the bounded MPMC channel behind the async executor and
// channel-based stage dispatch: FIFO hand-off, backpressure on the
// capacity bound, and the close protocol (producers fail fast, consumers
// drain the residue before seeing end-of-stream).
#include "support/channel.hpp"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/lock_ranks.hpp"

namespace ss::support {
namespace {

TEST(ChannelTest, FifoWithinASingleProducer) {
  Channel<int> channel(lock_rank::kExecChannel);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(channel.Push(i));
  EXPECT_EQ(channel.size(), 8u);
  EXPECT_EQ(channel.pushes(), 8u);
  for (int i = 0; i < 8; ++i) {
    std::optional<int> value = channel.Pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_EQ(channel.size(), 0u);
}

TEST(ChannelTest, PopBlocksUntilAPushArrives) {
  Channel<int> channel(lock_rank::kExecChannel);
  std::optional<int> received;
  std::thread consumer([&]() { received = channel.Pop(); });
  EXPECT_TRUE(channel.Push(42));
  consumer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, 42);
}

TEST(ChannelTest, CloseWakesABlockedConsumerWithEndOfStream) {
  Channel<int> channel(lock_rank::kExecChannel);
  std::optional<int> received{1};
  std::thread consumer([&]() { received = channel.Pop(); });
  channel.Close();
  consumer.join();
  EXPECT_FALSE(received.has_value());
  EXPECT_TRUE(channel.closed());
}

TEST(ChannelTest, PushFailsAfterClose) {
  Channel<int> channel(lock_rank::kExecChannel);
  channel.Close();
  channel.Close();  // idempotent
  EXPECT_FALSE(channel.Push(1));
  EXPECT_FALSE(channel.TryPush(1));
  EXPECT_EQ(channel.pushes(), 0u);
}

TEST(ChannelTest, ResidueDrainsBeforeEndOfStream) {
  Channel<int> channel(lock_rank::kExecChannel);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(channel.Push(i));
  channel.Close();
  for (int i = 0; i < 3; ++i) {
    std::optional<int> value = channel.Pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(channel.Pop().has_value());
  EXPECT_FALSE(channel.Pop().has_value());  // stays drained
}

TEST(ChannelTest, BoundedPushBlocksAndCountsBackpressure) {
  Channel<int> channel(lock_rank::kExecChannel, /*capacity=*/1);
  EXPECT_TRUE(channel.Push(1));
  EXPECT_FALSE(channel.TryPush(2)) << "full channel must reject TryPush";
  std::thread producer([&]() { EXPECT_TRUE(channel.Push(2)); });
  // Wait until the producer is provably blocked on the bound, then free
  // the slot: its push completes and the wait was counted.
  while (channel.backpressure_waits() == 0) std::this_thread::yield();
  std::optional<int> first = channel.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  producer.join();
  std::optional<int> second = channel.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  EXPECT_GE(channel.backpressure_waits(), 1u);
}

TEST(ChannelTest, CloseReleasesABlockedProducer) {
  Channel<int> channel(lock_rank::kExecChannel, /*capacity=*/1);
  EXPECT_TRUE(channel.Push(1));
  std::atomic<int> result{-1};
  std::thread producer([&]() { result = channel.Push(2) ? 1 : 0; });
  // Give the producer a chance to block on the full channel, then close
  // without popping: the push must fail rather than hang.
  while (channel.backpressure_waits() == 0) std::this_thread::yield();
  channel.Close();
  producer.join();
  EXPECT_EQ(result.load(), 0);
}

TEST(ChannelTest, ManyProducersManyConsumersConserveTheSum) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  Channel<int> channel(lock_rank::kExecChannel, /*capacity=*/8);
  std::atomic<std::int64_t> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&]() {
      while (std::optional<int> value = channel.Pop()) {
        sum += *value;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p]() {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(channel.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  channel.Close();
  for (std::thread& t : threads) t.join();
  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(),
            static_cast<std::int64_t>(total) * (total - 1) / 2);
  EXPECT_EQ(channel.pushes(), static_cast<std::uint64_t>(total));
}

}  // namespace
}  // namespace ss::support
