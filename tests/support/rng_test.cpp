#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ss {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedZeroReturnsZero) {
  Rng rng(5);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, SplitStreamsAreIndependentOfParentAdvance) {
  // Child derivation must not depend on how far the parent has advanced
  // the *shared* construction path: the same parent state and id give the
  // same child.
  Rng parent(99);
  Rng child1 = parent.Split(4);
  Rng child2 = parent.Split(4);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, SplitWithDifferentIdsDiffer) {
  Rng parent(99);
  Rng a = parent.Split(1);
  Rng b = parent.Split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, SplitDoesNotAdvanceParent) {
  Rng a(42);
  Rng b(42);
  (void)a.Split(17);
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 description (seed 0 first output).
  std::uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
}

TEST(RngTest, UniformRandomBitGeneratorInterface) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(3);
  (void)rng();  // compiles and runs via operator()
}

/// Property sweep: bounded generation is unbiased enough across bounds.
class RngBoundedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundedSweep, RoughlyUniform) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 7919 + 1);
  std::vector<int> counts(bound, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextBounded(bound)];
  const double expected = static_cast<double>(draws) / bound;
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], expected, expected * 0.35)
        << "bound=" << bound << " value=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundedSweep,
                         ::testing::Values(2, 3, 5, 8, 13));

}  // namespace
}  // namespace ss
