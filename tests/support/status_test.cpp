#include "support/status.hpp"

#include <gtest/gtest.h>

namespace ss {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("f.txt").ToString(), "NotFound: f.txt");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
  EXPECT_THROW(result.value(), StatusError);
}

TEST(ResultTest, ThrownStatusErrorCarriesStatus) {
  Result<int> result(Status::DataLoss("gone"));
  try {
    result.value();
    FAIL() << "expected throw";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(std::string(error.what()).find("gone"), std::string::npos);
  }
}

TEST(ResultTest, MoveValueOut) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, OkStatusIntoResultBecomesInternalError) {
  Result<int> result(Status::Ok());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Unavailable("down"); };
  auto wrapper = [&]() -> Status {
    SS_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kUnavailable);
}

TEST(StatusMacroTest, ReturnIfErrorPassesOk) {
  auto succeeds = []() -> Status { return Status::Ok(); };
  auto wrapper = [&]() -> Status {
    SS_RETURN_IF_ERROR(succeeds());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace ss
