#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ss {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() { return 7 * 6; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter]() { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  pool.ParallelFor(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstError) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(0, 10,
                                [](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForWaitsForAllEvenOnError) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(0, 20, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      completed.fetch_add(1);
    });
  } catch (const std::runtime_error&) {
  }
  // All non-throwing iterations ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 19);
}

TEST(ThreadPoolTest, ParallelForEveryIterationThrowsStillReturnsOnce) {
  ThreadPool pool(4);
  std::atomic<int> attempts{0};
  try {
    pool.ParallelFor(0, 64, [&](std::size_t) {
      attempts.fetch_add(1);
      throw std::runtime_error("all fail");
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error&) {
  }
  // Exactly one exception escapes even when every iteration threw.
  EXPECT_EQ(attempts.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotInterfere) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::thread other([&]() {
    ThreadPool inner(2);
    inner.ParallelFor(0, 50, [&](std::size_t) { total.fetch_add(1); });
  });
  pool.ParallelFor(0, 50, [&](std::size_t) { total.fetch_add(1); });
  other.join();
  EXPECT_EQ(total.load(), 100);
}

#if defined(SPARKSCORE_DCHECKS) && defined(GTEST_HAS_DEATH_TEST)
TEST(ThreadPoolDeathTest, SubmitDuringShutdownIsAProgrammingError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        std::atomic<ThreadPool*> pool_ptr{nullptr};
        std::atomic<bool> entered{false};
        {
          ThreadPool pool(1);
          pool_ptr.store(&pool);
          pool.Submit([&]() {
            entered.store(true);
            // Give ~ThreadPool time to start on the driver thread, then
            // violate the lifetime contract from inside a running task.
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
            pool_ptr.load()->Submit([]() {});
          });
          while (!entered.load()) {
            std::this_thread::yield();
          }
          // Destructor begins here while the task is still sleeping.
        }
      },
      "Submit after shutdown");
}
#endif

TEST(ThreadPoolTest, DestructorJoinsWithoutRunningPending) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Block the single worker, then queue more work that will be abandoned.
    auto gate = pool.Submit([]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&ran]() { ran.fetch_add(1); });
    }
    gate.get();
    // Destructor runs here: pending tasks may be dropped, never deadlock.
  }
  EXPECT_LE(ran.load(), 10);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<bool> first_started{false};
  std::atomic<bool> second_observed_first{false};
  auto f1 = pool.Submit([&]() {
    first_started.store(true);
    // Busy-wait until observed or timeout; proves overlap.
    for (int i = 0; i < 1000 && !second_observed_first.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  auto f2 = pool.Submit([&]() {
    for (int i = 0; i < 1000 && !first_started.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    second_observed_first.store(first_started.load());
  });
  f1.get();
  f2.get();
  EXPECT_TRUE(second_observed_first.load());
}

}  // namespace
}  // namespace ss
