// Streaming generation + store codec: the GenotypeStream must be bitwise
// identical to the dense Generate() path (the enabler for staging 1M-SNP
// cohorts without the full matrix), the frame payload codec must
// round-trip and fail closed, and GenerateToStore must stage a file whose
// decoded contents equal the dense path — at any partition count.
#include "simdata/store_codec.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "dfs/genotype_store.hpp"
#include "simdata/dfs_writer.hpp"
#include "simdata/generator.hpp"
#include "simdata/text_format.hpp"
#include "stats/kernels/packed_genotype.hpp"

namespace ss::simdata {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_patients = 23;
  config.num_snps = 57;
  config.num_sets = 4;
  config.seed = 77;
  return config;
}

TEST(GenotypeStreamTest, MatchesDenseGeneratorBitwise) {
  // The contract Next() row j must honor: exactly what Generate() put at
  // matrix row j — dosages, allele frequency, and weight, all bitwise.
  for (std::uint32_t ld_block : {1u, 4u}) {
    for (WeightScheme scheme :
         {WeightScheme::kUnit, WeightScheme::kMadsenBrowning,
          WeightScheme::kRandom}) {
      GeneratorConfig config = SmallConfig();
      config.ld_block_size = ld_block;
      config.weights = scheme;
      const SyntheticDataset dense = Generate(config);
      GenotypeStream stream(config);
      for (std::uint32_t j = 0; j < config.num_snps; ++j) {
        ASSERT_EQ(stream.remaining(), config.num_snps - j);
        const StreamedSnp row = stream.Next();
        ASSERT_EQ(row.snp, j);
        EXPECT_EQ(row.dosages, dense.genotypes.by_snp[j])
            << "ld=" << ld_block << " snp " << j;
        EXPECT_EQ(row.allele_freq, dense.genotypes.allele_freq[j]);
        EXPECT_EQ(row.weight, dense.weights[j]);
      }
      EXPECT_EQ(stream.remaining(), 0u);
    }
  }
}

TEST(StoreCodecTest, GenotypePartitionRoundTrips) {
  std::vector<stats::PackedSnpRecord> records;
  for (std::uint32_t j = 0; j < 9; ++j) {
    std::vector<std::uint8_t> dosages(17 + j);
    for (std::size_t i = 0; i < dosages.size(); ++i) {
      dosages[i] = static_cast<std::uint8_t>((i + j) % 3);
    }
    records.push_back({j * 5, stats::PackedGenotypeBlock::Pack(dosages)});
  }
  const std::vector<std::uint8_t> bytes = EncodeGenotypePartition(records);
  auto decoded = DecodeGenotypePartition(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.value()[i], records[i]) << "record " << i;
  }
  // Empty partitions are legal (a tail partition can be empty).
  auto empty = DecodeGenotypePartition(EncodeGenotypePartition({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(StoreCodecTest, MalformedPayloadFailsClosed) {
  std::vector<stats::PackedSnpRecord> records{
      {3, stats::PackedGenotypeBlock::Pack({0, 1, 2, 1, 0})}};
  const std::vector<std::uint8_t> bytes = EncodeGenotypePartition(records);
  // Truncations at every prefix must return InvalidArgument, not crash.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + cut);
    auto decoded = DecodeGenotypePartition(prefix);
    ASSERT_FALSE(decoded.ok()) << "cut " << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  // Trailing garbage is also refused (a frame is exactly one partition).
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(DecodeGenotypePartition(padded).ok());
  // A count far beyond the byte budget must not trigger a giant reserve.
  std::vector<std::uint8_t> huge(8, 0xFF);
  EXPECT_FALSE(DecodeGenotypePartition(huge).ok());
}

TEST(StoreCodecTest, TextLinesRoundTrip) {
  const std::vector<std::string> lines{"#model cox", "12.5 1", "3.25 0"};
  EXPECT_EQ(DecodeTextLines(EncodeTextLines(lines)), lines);
  EXPECT_TRUE(DecodeTextLines(EncodeTextLines({})).empty());
  const std::vector<std::string> one{"solo"};
  EXPECT_EQ(DecodeTextLines(EncodeTextLines(one)), one);
}

TEST(StoreCodecTest, FingerprintTracksDataParametersOnly) {
  const GeneratorConfig base = SmallConfig();
  const std::uint64_t fingerprint = StoreFingerprint(base);
  EXPECT_EQ(StoreFingerprint(base), fingerprint);  // deterministic

  GeneratorConfig seed = base;
  seed.seed += 1;
  EXPECT_NE(StoreFingerprint(seed), fingerprint);
  GeneratorConfig snps = base;
  snps.num_snps += 1;
  EXPECT_NE(StoreFingerprint(snps), fingerprint);
  GeneratorConfig maf = base;
  maf.maf_min += 0.01;
  EXPECT_NE(StoreFingerprint(maf), fingerprint);
  GeneratorConfig weights = base;
  weights.weights = WeightScheme::kUnit;
  EXPECT_NE(StoreFingerprint(weights), fingerprint);

  // The text the hash covers is what the description frame stages.
  EXPECT_NE(StoreFingerprintText(base).find("snps=57"), std::string::npos);
}

TEST(StoreCodecTest, PartitionRowsMirrorsDfsBlockSizing) {
  EXPECT_EQ(StorePartitionRows(100, 8), 12u);  // truncating, like MiniDfs
  EXPECT_EQ(StorePartitionRows(100, 1), 100u);
  EXPECT_EQ(StorePartitionRows(5, 8), 1u);   // more partitions than rows
  EXPECT_EQ(StorePartitionRows(100, 0), 100u);  // 0 treated as 1
}

TEST(GenerateToStoreTest, StagedStoreMatchesDensePath) {
  const GeneratorConfig config = SmallConfig();
  const SyntheticDataset dense = Generate(config);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "ss_stream_store.ssg")
          .string();

  auto staged = GenerateToStore(config, path, /*requested_partitions=*/4);
  ASSERT_TRUE(staged.ok()) << staged.status().ToString();
  auto store = dfs::GenotypeStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->num_partitions(), staged.value().num_partitions);
  EXPECT_EQ(store.value()->fingerprint(), StoreFingerprint(config));
  EXPECT_EQ(store.value()->description(), StoreFingerprintText(config));
  EXPECT_EQ(store.value()->meta().num_snps, config.num_snps);
  EXPECT_EQ(store.value()->meta().num_patients, config.num_patients);

  // Every genotype frame decodes to the dense matrix's rows, in order.
  std::uint32_t next_snp = 0;
  for (std::uint32_t p = 0; p < store.value()->num_partitions(); ++p) {
    auto frame = store.value()->ReadGenotypeFrame(p);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    auto records = DecodeGenotypePartition(frame.value());
    ASSERT_TRUE(records.ok()) << records.status().ToString();
    for (const stats::PackedSnpRecord& record : records.value()) {
      ASSERT_EQ(record.snp, next_snp);
      EXPECT_EQ(record.genotypes.Unpack(), dense.genotypes.by_snp[next_snp])
          << "snp " << next_snp;
      ++next_snp;
    }
  }
  EXPECT_EQ(next_snp, config.num_snps);

  // Aux frames parse back to the dense study's driver-side tables.
  auto phenotype_frame = store.value()->ReadAuxFrame(dfs::StoreFrameKind::kPhenotype);
  ASSERT_TRUE(phenotype_frame.ok());
  auto phenotype = ParsePhenotypeFile(DecodeTextLines(phenotype_frame.value()));
  ASSERT_TRUE(phenotype.ok()) << phenotype.status().ToString();
  ASSERT_EQ(phenotype.value().n(), dense.survival.n());
  for (std::size_t i = 0; i < dense.survival.n(); ++i) {
    EXPECT_EQ(phenotype.value().survival.time[i], dense.survival.time[i]);
    EXPECT_EQ(phenotype.value().survival.event[i], dense.survival.event[i]);
  }

  auto weights_frame = store.value()->ReadAuxFrame(dfs::StoreFrameKind::kWeights);
  ASSERT_TRUE(weights_frame.ok());
  const std::vector<std::string> weight_lines =
      DecodeTextLines(weights_frame.value());
  ASSERT_EQ(weight_lines.size(), dense.weights.size());
  for (std::size_t j = 0; j < weight_lines.size(); ++j) {
    auto parsed = ParseWeight(weight_lines[j]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().snp, j);
    EXPECT_EQ(parsed.value().weight, dense.weights[j]) << "weight " << j;
  }

  auto sets_frame = store.value()->ReadAuxFrame(dfs::StoreFrameKind::kSets);
  ASSERT_TRUE(sets_frame.ok());
  const std::vector<std::string> set_lines = DecodeTextLines(sets_frame.value());
  ASSERT_EQ(set_lines.size(), dense.sets.size());
  for (std::size_t k = 0; k < set_lines.size(); ++k) {
    auto parsed = ParseSnpSet(set_lines[k]);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().id, dense.sets[k].id);
    EXPECT_EQ(parsed.value().snps, dense.sets[k].snps);
  }
}

TEST(GenerateToStoreTest, PartitionCountChangesLayoutNotData) {
  // Staging the same cohort at different partition counts yields the
  // same fingerprint and the same concatenated SNP rows — partitioning
  // is layout, not identity.
  const GeneratorConfig config = SmallConfig();
  std::vector<std::vector<std::uint8_t>> previous;
  for (std::uint32_t partitions : {1u, 3u, 8u}) {
    const std::string path =
        (std::filesystem::path(::testing::TempDir()) /
         ("ss_stream_store_p" + std::to_string(partitions) + ".ssg"))
            .string();
    ASSERT_TRUE(GenerateToStore(config, path, partitions).ok());
    auto store = dfs::GenotypeStore::Open(path);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store.value()->fingerprint(), StoreFingerprint(config));
    std::vector<std::vector<std::uint8_t>> rows;
    for (std::uint32_t p = 0; p < store.value()->num_partitions(); ++p) {
      auto frame = store.value()->ReadGenotypeFrame(p);
      ASSERT_TRUE(frame.ok());
      auto records = DecodeGenotypePartition(frame.value());
      ASSERT_TRUE(records.ok());
      for (const stats::PackedSnpRecord& record : records.value()) {
        rows.push_back(record.genotypes.Unpack());
      }
    }
    ASSERT_EQ(rows.size(), config.num_snps);
    if (!previous.empty()) {
      EXPECT_EQ(rows, previous);
    }
    previous = std::move(rows);
  }
}

}  // namespace
}  // namespace ss::simdata
