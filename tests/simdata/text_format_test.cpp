#include "simdata/text_format.hpp"

#include <gtest/gtest.h>

#include "dfs/dfs.hpp"
#include "simdata/dfs_writer.hpp"

namespace ss::simdata {
namespace {

TEST(SnpRecordFormatTest, RoundTrip) {
  const SnpRecord record{42, {0, 1, 2, 2, 0}};
  const auto parsed = ParseSnpRecord(FormatSnpRecord(record));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), record);
}

TEST(SnpRecordFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSnpRecord("").ok());
  EXPECT_FALSE(ParseSnpRecord("42").ok());            // no dosages
  EXPECT_FALSE(ParseSnpRecord("x 0 1").ok());         // bad id
  EXPECT_FALSE(ParseSnpRecord("1 0 3").ok());         // dosage > 2
  EXPECT_FALSE(ParseSnpRecord("1 0 -1").ok());        // negative
  EXPECT_FALSE(ParseSnpRecord("1 0 1.5").ok());       // non-integer
}

TEST(SnpRecordFormatTest, ToleratesExtraSpaces) {
  const auto parsed = ParseSnpRecord("  7   1  2 ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().snp, 7u);
  EXPECT_EQ(parsed.value().genotypes, (std::vector<std::uint8_t>{1, 2}));
}

TEST(PhenotypeFormatTest, RoundTrip) {
  for (const stats::PhenotypePair pair :
       {stats::PhenotypePair{12.75, 1}, stats::PhenotypePair{0.0, 0},
        stats::PhenotypePair{1e-6, 1}}) {
    const auto parsed = ParsePhenotype(FormatPhenotype(pair));
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().time, pair.time);
    EXPECT_EQ(parsed.value().event, pair.event);
  }
}

TEST(PhenotypeFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParsePhenotype("").ok());
  EXPECT_FALSE(ParsePhenotype("1.5").ok());        // missing event
  EXPECT_FALSE(ParsePhenotype("1.5 2").ok());      // event not 0/1
  EXPECT_FALSE(ParsePhenotype("-1 0").ok());       // negative time
  EXPECT_FALSE(ParsePhenotype("a 1").ok());
  EXPECT_FALSE(ParsePhenotype("1 1 extra").ok());
}

TEST(WeightFormatTest, RoundTrip) {
  const auto parsed = ParseWeight(FormatWeight({9, 2.5}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().snp, 9u);
  EXPECT_DOUBLE_EQ(parsed.value().weight, 2.5);
}

TEST(WeightFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParseWeight("1").ok());
  EXPECT_FALSE(ParseWeight("1 -0.5").ok());  // negative weight
  EXPECT_FALSE(ParseWeight("x 1.0").ok());
}

TEST(SnpSetFormatTest, RoundTrip) {
  const stats::SnpSet set{3, {10, 20, 30}};
  const auto parsed = ParseSnpSet(FormatSnpSet(set));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 3u);
  EXPECT_EQ(parsed.value().snps, set.snps);
}

TEST(SnpSetFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSnpSet("3").ok());       // empty set
  EXPECT_FALSE(ParseSnpSet("3 a").ok());
  EXPECT_FALSE(ParseSnpSet("").ok());
}

TEST(DfsWriterTest, StagesAllFourFiles) {
  dfs::MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 64});
  GeneratorConfig config;
  config.num_patients = 50;
  config.num_snps = 100;
  config.num_sets = 10;
  const auto paths = GenerateToDfs(dfs, "/study", config);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(dfs.Exists(paths.value().genotypes));
  EXPECT_TRUE(dfs.Exists(paths.value().phenotype));
  EXPECT_TRUE(dfs.Exists(paths.value().weights));
  EXPECT_TRUE(dfs.Exists(paths.value().snp_sets));
  EXPECT_EQ(dfs.ReadTextFile(paths.value().genotypes).value().size(), 100u);
  // Phenotype file: "#model cox" header + one line per patient.
  EXPECT_EQ(dfs.ReadTextFile(paths.value().phenotype).value().size(), 51u);
}

TEST(DfsWriterTest, StagedDataRoundTripsThroughParsers) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  GeneratorConfig config;
  config.num_patients = 30;
  config.num_snps = 40;
  config.num_sets = 5;
  const SyntheticDataset dataset = Generate(config);
  const StudyPaths paths = StudyPaths::Under("/s");
  ASSERT_TRUE(WriteStudy(dfs, paths, dataset).ok());

  const auto genotype_lines = dfs.ReadTextFile(paths.genotypes).value();
  for (std::uint32_t j = 0; j < 40; ++j) {
    const auto record = ParseSnpRecord(genotype_lines[j]);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().snp, j);
    EXPECT_EQ(record.value().genotypes, dataset.genotypes.by_snp[j]);
  }
  const auto phenotype_lines = dfs.ReadTextFile(paths.phenotype).value();
  const auto phenotype = ParsePhenotypeFile(phenotype_lines);
  ASSERT_TRUE(phenotype.ok());
  EXPECT_EQ(phenotype.value().model, stats::ScoreModel::kCox);
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(phenotype.value().survival.time[i],
                     dataset.survival.time[i]);
    EXPECT_EQ(phenotype.value().survival.event[i], dataset.survival.event[i]);
  }
}

TEST(PhenotypeFileTest, RoundTripsAllThreeModels) {
  stats::SurvivalData survival;
  survival.time = {1.5, 2.25};
  survival.event = {1, 0};
  stats::QuantitativeData quantitative;
  quantitative.value = {-0.75, 3.125, 9.0};
  stats::BinaryData binary;
  binary.value = {1, 0, 0, 1};

  for (const stats::Phenotype& original :
       {stats::Phenotype::Cox(survival),
        stats::Phenotype::Gaussian(quantitative),
        stats::Phenotype::Binomial(binary)}) {
    const auto parsed = ParsePhenotypeFile(FormatPhenotypeFile(original));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().model, original.model);
    EXPECT_EQ(parsed.value().n(), original.n());
    switch (original.model) {
      case stats::ScoreModel::kCox:
        EXPECT_EQ(parsed.value().survival.time, original.survival.time);
        EXPECT_EQ(parsed.value().survival.event, original.survival.event);
        break;
      case stats::ScoreModel::kGaussian:
        EXPECT_EQ(parsed.value().quantitative.value,
                  original.quantitative.value);
        break;
      case stats::ScoreModel::kBinomial:
        EXPECT_EQ(parsed.value().binary.value, original.binary.value);
        break;
    }
  }
}

TEST(PhenotypeFileTest, LegacyHeaderlessFileParsesAsCox) {
  const auto parsed = ParsePhenotypeFile({"1.5 1", "2.25 0"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().model, stats::ScoreModel::kCox);
  EXPECT_EQ(parsed.value().n(), 2u);
}

TEST(PhenotypeFileTest, RejectsBadHeaderAndValues) {
  EXPECT_FALSE(ParsePhenotypeFile({"#model poisson", "1"}).ok());
  EXPECT_FALSE(ParsePhenotypeFile({"#banana", "1 1"}).ok());
  EXPECT_FALSE(ParsePhenotypeFile({"#model binomial", "2"}).ok());
  EXPECT_FALSE(ParsePhenotypeFile({"#model gaussian", "abc"}).ok());
}

TEST(PhenotypeFileTest, EmptyFileIsEmptyCoxPhenotype) {
  const auto parsed = ParsePhenotypeFile({});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().n(), 0u);
}

TEST(DfsWriterTest, DoubleStageFails) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  GeneratorConfig config;
  config.num_patients = 10;
  config.num_snps = 10;
  config.num_sets = 2;
  ASSERT_TRUE(GenerateToDfs(dfs, "/dup", config).ok());
  EXPECT_FALSE(GenerateToDfs(dfs, "/dup", config).ok());
}

}  // namespace
}  // namespace ss::simdata
