// LD-block genotype generation: marginals preserved, within-block
// correlation present, cross-block independence.
#include <gtest/gtest.h>

#include <cmath>

#include "simdata/generator.hpp"

namespace ss::simdata {
namespace {

GeneratorConfig LdConfig(std::uint32_t block, double correlation) {
  GeneratorConfig config;
  config.num_patients = 4000;
  config.num_snps = 40;
  config.num_sets = 4;
  config.seed = 321;
  config.maf_min = 0.2;
  config.maf_max = 0.4;
  config.ld_block_size = block;
  config.ld_correlation = correlation;
  return config;
}

/// Pearson correlation of two dosage rows.
double Correlation(const std::vector<std::uint8_t>& a,
                   const std::vector<std::uint8_t>& b) {
  const std::size_t n = a.size();
  double ma = 0;
  double mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0;
  double va = 0;
  double vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

TEST(LdTest, MarginalsPreservedUnderLd) {
  const SyntheticDataset dataset = Generate(LdConfig(5, 0.9));
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    double allele_sum = 0;
    for (std::uint8_t g : dataset.genotypes.by_snp[j]) {
      ASSERT_LE(g, 2);
      allele_sum += g;
    }
    const double observed = allele_sum / (2.0 * 4000.0);
    EXPECT_NEAR(observed, dataset.genotypes.allele_freq[j], 0.03)
        << "SNP " << j;
  }
}

TEST(LdTest, WithinBlockCorrelationPresent) {
  const SyntheticDataset dataset = Generate(LdConfig(5, 0.9));
  // SNPs 0-4 share a block.
  const double r01 =
      Correlation(dataset.genotypes.by_snp[0], dataset.genotypes.by_snp[1]);
  const double r23 =
      Correlation(dataset.genotypes.by_snp[2], dataset.genotypes.by_snp[3]);
  EXPECT_GT(r01, 0.4);
  EXPECT_GT(r23, 0.4);
}

TEST(LdTest, CrossBlockUncorrelated) {
  const SyntheticDataset dataset = Generate(LdConfig(5, 0.9));
  // SNP 4 (block 0) vs SNP 5 (block 1).
  const double r =
      Correlation(dataset.genotypes.by_snp[4], dataset.genotypes.by_snp[5]);
  EXPECT_LT(std::fabs(r), 0.08);
}

TEST(LdTest, CorrelationScalesWithParameter) {
  const SyntheticDataset strong = Generate(LdConfig(4, 0.95));
  const SyntheticDataset weak = Generate(LdConfig(4, 0.3));
  const double r_strong =
      Correlation(strong.genotypes.by_snp[0], strong.genotypes.by_snp[1]);
  const double r_weak =
      Correlation(weak.genotypes.by_snp[0], weak.genotypes.by_snp[1]);
  EXPECT_GT(r_strong, r_weak + 0.2);
}

TEST(LdTest, BlockSizeOneMatchesIndependentRegime) {
  // ld_block_size=1 must reproduce the legacy independent generator
  // exactly (same seed, same data).
  GeneratorConfig independent = LdConfig(1, 0.9);
  GeneratorConfig legacy = LdConfig(1, 0.0);
  const SyntheticDataset a = Generate(independent);
  const SyntheticDataset b = Generate(legacy);
  EXPECT_EQ(a.genotypes.by_snp, b.genotypes.by_snp);
  // And independence holds.
  EXPECT_LT(std::fabs(Correlation(a.genotypes.by_snp[0],
                                  a.genotypes.by_snp[1])),
            0.08);
}

TEST(LdTest, DeterministicUnderLd) {
  const SyntheticDataset a = Generate(LdConfig(5, 0.7));
  const SyntheticDataset b = Generate(LdConfig(5, 0.7));
  EXPECT_EQ(a.genotypes.by_snp, b.genotypes.by_snp);
}

}  // namespace
}  // namespace ss::simdata
