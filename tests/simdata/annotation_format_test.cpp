#include <gtest/gtest.h>

#include "simdata/annotation.hpp"

namespace ss::simdata {
namespace {

TEST(GeneFormatTest, RoundTrip) {
  const Gene gene{7, 3, 1000, 25000, "BRCA2"};
  const auto parsed = ParseGene(FormatGene(gene));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().id, 7u);
  EXPECT_EQ(parsed.value().chromosome, 3u);
  EXPECT_EQ(parsed.value().start, 1000u);
  EXPECT_EQ(parsed.value().end, 25000u);
  EXPECT_EQ(parsed.value().name, "BRCA2");
}

TEST(GeneFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParseGene("").ok());
  EXPECT_FALSE(ParseGene("1 2 3 4").ok());        // missing name
  EXPECT_FALSE(ParseGene("1 2 100 50 G").ok());    // end < start
  EXPECT_FALSE(ParseGene("x 2 1 2 G").ok());       // bad id
  EXPECT_FALSE(ParseGene("1 2 -5 2 G").ok());      // negative start
}

TEST(LocusFormatTest, RoundTrip) {
  const SnpLocus locus{12, 3141592};
  const auto parsed = ParseLocus(FormatLocus(locus));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), locus);
}

TEST(LocusFormatTest, RejectsMalformed) {
  EXPECT_FALSE(ParseLocus("").ok());
  EXPECT_FALSE(ParseLocus("1").ok());
  EXPECT_FALSE(ParseLocus("1 -3").ok());
  EXPECT_FALSE(ParseLocus("a 5").ok());
  EXPECT_FALSE(ParseLocus("1 2 3").ok());
}

TEST(AnnotationFormatTest, GeneratedGenomeRoundTrips) {
  GenomeConfig config;
  config.num_genes = 20;
  config.num_snps = 100;
  config.seed = 77;
  const GenomeAnnotation genome = GenerateGenome(config);
  for (const Gene& gene : genome.genes()) {
    const auto parsed = ParseGene(FormatGene(gene));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().id, gene.id);
    EXPECT_EQ(parsed.value().start, gene.start);
    EXPECT_EQ(parsed.value().end, gene.end);
  }
  for (const SnpLocus& locus : genome.loci()) {
    const auto parsed = ParseLocus(FormatLocus(locus));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), locus);
  }
}

}  // namespace
}  // namespace ss::simdata
