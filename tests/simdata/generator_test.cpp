#include "simdata/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "support/summary.hpp"

namespace ss::simdata {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_patients = 200;
  config.num_snps = 500;
  config.num_sets = 20;
  config.seed = 99;
  return config;
}

TEST(GeneratorTest, ShapesMatchConfig) {
  const SyntheticDataset dataset = Generate(SmallConfig());
  EXPECT_EQ(dataset.survival.n(), 200u);
  EXPECT_EQ(dataset.genotypes.num_snps(), 500u);
  EXPECT_EQ(dataset.genotypes.num_patients, 200u);
  EXPECT_EQ(dataset.weights.size(), 500u);
  EXPECT_EQ(dataset.sets.size(), 20u);
  for (const auto& row : dataset.genotypes.by_snp) {
    EXPECT_EQ(row.size(), 200u);
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  const SyntheticDataset a = Generate(SmallConfig());
  const SyntheticDataset b = Generate(SmallConfig());
  EXPECT_EQ(a.survival.time, b.survival.time);
  EXPECT_EQ(a.genotypes.by_snp, b.genotypes.by_snp);
  EXPECT_EQ(a.weights, b.weights);
  for (std::size_t k = 0; k < a.sets.size(); ++k) {
    EXPECT_EQ(a.sets[k].snps, b.sets[k].snps);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig other = SmallConfig();
  other.seed = 100;
  EXPECT_NE(Generate(SmallConfig()).survival.time,
            Generate(other).survival.time);
}

TEST(GeneratorTest, SurvivalMatchesPaperParameters) {
  // Exp(1/12) survival, Bernoulli(0.85) events (Section III).
  const stats::SurvivalData data = GenerateSurvival(7, 50000, 12.0, 0.85);
  EXPECT_NEAR(Mean(data.time), 12.0, 0.3);
  double events = 0;
  for (std::uint8_t e : data.event) events += e;
  EXPECT_NEAR(events / 50000.0, 0.85, 0.01);
  for (double t : data.time) EXPECT_GE(t, 0.0);
}

TEST(GeneratorTest, GenotypesAreDiploidDosagesWithMatchingFrequency) {
  GeneratorConfig config = SmallConfig();
  config.num_patients = 2000;
  config.num_snps = 20;
  config.num_sets = 5;
  const SyntheticDataset dataset = Generate(config);
  for (std::uint32_t j = 0; j < 20; ++j) {
    double allele_sum = 0.0;
    for (std::uint8_t g : dataset.genotypes.by_snp[j]) {
      EXPECT_LE(g, 2);
      allele_sum += g;
    }
    const double observed_freq = allele_sum / (2.0 * 2000.0);
    EXPECT_NEAR(observed_freq, dataset.genotypes.allele_freq[j], 0.04)
        << "SNP " << j;
  }
}

TEST(GeneratorTest, AlleleFrequenciesWithinConfiguredRange) {
  const SyntheticDataset dataset = Generate(SmallConfig());
  for (double rho : dataset.genotypes.allele_freq) {
    EXPECT_GE(rho, 0.05);
    EXPECT_LE(rho, 0.50);
  }
}

TEST(GeneratorTest, SnpSetsPartitionAllSnps) {
  // Section III: set K is augmented with unpicked SNPs, so the family
  // covers every SNP exactly once (it is a partition by construction).
  const auto sets = GenerateSnpSets(3, 1000, 40);
  std::vector<std::uint32_t> all;
  for (const auto& set : sets) {
    EXPECT_FALSE(set.snps.empty());
    all.insert(all.end(), set.snps.begin(), set.snps.end());
  }
  ASSERT_EQ(all.size(), 1000u);
  std::sort(all.begin(), all.end());
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(all[i], i);
}

TEST(GeneratorTest, SnpSetSizesHaveExponentialSpread) {
  // Mean size ~ m/K; sizes should vary (not all equal).
  const auto sets = GenerateSnpSets(5, 10000, 100);
  std::vector<double> sizes;
  for (const auto& set : sets) sizes.push_back(static_cast<double>(set.snps.size()));
  const Summary s = Summarize(sizes);
  EXPECT_NEAR(s.mean, 100.0, 1e-9);  // exact: it is a partition
  EXPECT_GT(s.stdev, 20.0);          // exponential-ish dispersion
}

TEST(GeneratorTest, SingleSetTakesEverything) {
  const auto sets = GenerateSnpSets(6, 50, 1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].snps.size(), 50u);
}

TEST(GeneratorTest, SetsValidAgainstSkatValidator) {
  const SyntheticDataset dataset = Generate(SmallConfig());
  EXPECT_TRUE(stats::ValidateSnpSets(dataset.sets, 500).ok());
}

TEST(GeneratorTest, WeightSchemes) {
  GeneratorConfig config = SmallConfig();
  config.weights = WeightScheme::kUnit;
  for (double w : Generate(config).weights) EXPECT_DOUBLE_EQ(w, 1.0);

  config.weights = WeightScheme::kMadsenBrowning;
  const SyntheticDataset mb = Generate(config);
  for (std::uint32_t j = 0; j < 500; ++j) {
    const double rho = mb.genotypes.allele_freq[j];
    EXPECT_NEAR(mb.weights[j], 1.0 / std::sqrt(2.0 * rho * (1.0 - rho)),
                1e-12);
  }

  config.weights = WeightScheme::kRandom;
  for (double w : Generate(config).weights) {
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 1.5);
  }
}

TEST(GeneratorTest, SnpStreamsIndependentOfSnpCount) {
  // SNP j's genotypes must not change when more SNPs are generated.
  GeneratorConfig small = SmallConfig();
  GeneratorConfig large = SmallConfig();
  large.num_snps = 1000;
  const SyntheticDataset a = Generate(small);
  const SyntheticDataset b = Generate(large);
  for (std::uint32_t j = 0; j < 500; ++j) {
    EXPECT_EQ(a.genotypes.by_snp[j], b.genotypes.by_snp[j]) << "SNP " << j;
  }
}

}  // namespace
}  // namespace ss::simdata
