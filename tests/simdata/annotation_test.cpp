#include "simdata/annotation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ss::simdata {
namespace {

GenomeAnnotation HandGenome() {
  // chr1: GENE0 [100,200], GENE1 [150,300] (overlapping), chr2: GENE2 [50,60].
  std::vector<Gene> genes = {
      {0, 1, 100, 200, "GENE0"},
      {1, 1, 150, 300, "GENE1"},
      {2, 2, 50, 60, "GENE2"},
  };
  std::vector<SnpLocus> loci = {
      {1, 120},  // snp 0: GENE0 only
      {1, 180},  // snp 1: GENE0 and GENE1 (overlap)
      {1, 250},  // snp 2: GENE1 only
      {1, 400},  // snp 3: intergenic
      {2, 55},   // snp 4: GENE2
      {2, 120},  // snp 5: intergenic
      {1, 100},  // snp 6: GENE0 boundary (start inclusive)
      {1, 300},  // snp 7: GENE1 boundary (end inclusive)
  };
  return GenomeAnnotation(std::move(genes), std::move(loci));
}

TEST(GenomeAnnotationTest, ContainmentIncludingOverlapsAndBoundaries) {
  const GenomeAnnotation genome = HandGenome();
  EXPECT_EQ(genome.GenesContaining(0), (std::vector<std::uint32_t>{0}));
  auto both = genome.GenesContaining(1);
  std::sort(both.begin(), both.end());
  EXPECT_EQ(both, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(genome.GenesContaining(2), (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(genome.GenesContaining(3).empty());
  EXPECT_EQ(genome.GenesContaining(4), (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(genome.GenesContaining(5).empty());
  EXPECT_EQ(genome.GenesContaining(6), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(genome.GenesContaining(7), (std::vector<std::uint32_t>{1}));
}

TEST(GenomeAnnotationTest, ChromosomeSeparation) {
  // Same position, different chromosome: no cross-chromosome matches.
  std::vector<Gene> genes = {{0, 1, 10, 20, "G"}};
  std::vector<SnpLocus> loci = {{2, 15}};
  const GenomeAnnotation genome(std::move(genes), std::move(loci));
  EXPECT_TRUE(genome.GenesContaining(0).empty());
}

TEST(GenomeAnnotationTest, DeriveSnpSetsMatchesContainment) {
  const GenomeAnnotation genome = HandGenome();
  const auto sets = genome.DeriveSnpSets();
  ASSERT_EQ(sets.size(), 3u);  // all three genes contain >= 1 SNP
  // Find GENE0's set.
  auto find_set = [&](std::uint32_t id) {
    for (const auto& set : sets) {
      if (set.id == id) return set.snps;
    }
    return std::vector<std::uint32_t>{};
  };
  auto g0 = find_set(0);
  std::sort(g0.begin(), g0.end());
  EXPECT_EQ(g0, (std::vector<std::uint32_t>{0, 1, 6}));
  auto g1 = find_set(1);
  std::sort(g1.begin(), g1.end());
  EXPECT_EQ(g1, (std::vector<std::uint32_t>{1, 2, 7}));
  EXPECT_EQ(find_set(2), (std::vector<std::uint32_t>{4}));
}

TEST(GenomeAnnotationTest, EmptyGenesDropped) {
  std::vector<Gene> genes = {{0, 1, 10, 20, "HIT"}, {1, 1, 500, 600, "EMPTY"}};
  std::vector<SnpLocus> loci = {{1, 15}};
  const GenomeAnnotation genome(std::move(genes), std::move(loci));
  const auto sets = genome.DeriveSnpSets();
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].id, 0u);
}

TEST(GenomeAnnotationTest, GenicSnpCount) {
  EXPECT_EQ(HandGenome().GenicSnpCount(), 6u);
}

TEST(GenerateGenomeTest, ShapesAndBounds) {
  GenomeConfig config;
  config.num_genes = 50;
  config.num_snps = 500;
  config.seed = 3;
  const GenomeAnnotation genome = GenerateGenome(config);
  EXPECT_EQ(genome.genes().size(), 50u);
  EXPECT_EQ(genome.num_snps(), 500u);
  for (const Gene& gene : genome.genes()) {
    EXPECT_GE(gene.chromosome, 1u);
    EXPECT_LE(gene.chromosome, config.num_chromosomes);
    EXPECT_LE(gene.start, gene.end);
    EXPECT_LT(gene.end, config.chromosome_length);
  }
  for (const SnpLocus& locus : genome.loci()) {
    EXPECT_GE(locus.chromosome, 1u);
    EXPECT_LE(locus.chromosome, config.num_chromosomes);
    EXPECT_LT(locus.position, config.chromosome_length);
  }
}

TEST(GenerateGenomeTest, GenicFractionRespected) {
  GenomeConfig config;
  config.num_genes = 40;
  config.num_snps = 2000;
  config.genic_fraction = 0.8;
  config.seed = 5;
  const GenomeAnnotation genome = GenerateGenome(config);
  // At least the forced fraction is genic (uniform placements add more).
  EXPECT_GE(genome.GenicSnpCount(), 1500u);
}

TEST(GenerateGenomeTest, Deterministic) {
  GenomeConfig config;
  config.seed = 11;
  const GenomeAnnotation a = GenerateGenome(config);
  const GenomeAnnotation b = GenerateGenome(config);
  ASSERT_EQ(a.loci().size(), b.loci().size());
  for (std::size_t i = 0; i < a.loci().size(); ++i) {
    EXPECT_EQ(a.loci()[i], b.loci()[i]);
  }
}

TEST(GenerateGenomeTest, DerivedSetsValidForSkat) {
  GenomeConfig config;
  config.num_genes = 30;
  config.num_snps = 400;
  config.seed = 13;
  const GenomeAnnotation genome = GenerateGenome(config);
  const auto sets = genome.DeriveSnpSets();
  ASSERT_FALSE(sets.empty());
  EXPECT_TRUE(stats::ValidateSnpSets(sets, 400).ok());
}

/// Brute-force cross-check over random genomes.
class AnnotationSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnotationSweep, ContainmentMatchesBruteForce) {
  GenomeConfig config;
  config.num_genes = 25;
  config.num_snps = 200;
  config.num_chromosomes = 4;
  config.seed = GetParam();
  const GenomeAnnotation genome = GenerateGenome(config);
  for (std::uint32_t snp = 0; snp < genome.num_snps(); ++snp) {
    std::vector<std::uint32_t> brute;
    for (const Gene& gene : genome.genes()) {
      if (gene.Contains(genome.loci()[snp])) brute.push_back(gene.id);
    }
    auto fast = genome.GenesContaining(snp);
    std::sort(brute.begin(), brute.end());
    std::sort(fast.begin(), fast.end());
    EXPECT_EQ(fast, brute) << "snp " << snp << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnotationSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ss::simdata
