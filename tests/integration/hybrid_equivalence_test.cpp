// The adaptive p-value engine's statistical-equivalence battery, system
// layer: for every simdata scenario, the adaptive modes (analytic,
// saddlepoint, hybrid, and sequential early stopping) must reproduce the
// exhaustive resampling p-values within the documented tolerances — the
// gate that lets the engine claim its replicate savings are free.
//
// Why tight tolerances are even possible: under Lin's Monte Carlo null
// the replicate statistic is EXACTLY Σ_m λ_m χ²₁ with λ_m the eigenvalues
// of the weighted score Gram, so the analytic tails differ from the
// exhaustive empirical p only by Monte Carlo noise (sd ≈ √(p(1−p)/B))
// plus a small tail-approximation error. The tolerance contract:
//   * unrefined (analytic) sets:   |p_a − p_exh| ≤ 5·sd_MC + 3% of p_exh;
//   * early-stopped sets (h/L):    additionally ± 5·p/√(h−1), the stopped
//     estimator's own sampling noise;
//   * classification at α = 0.05 must agree outside the exemption band
//     p_exh ∈ [0.5α, 2α] (inside the band either call is defensible).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/resampling_methods.hpp"
#include "engine/context.hpp"

namespace ss::core {
namespace {

constexpr std::uint64_t kSeed = 20160808;
constexpr std::uint64_t kReplicates = 2000;
constexpr std::uint64_t kEarlyStopH = 9;
constexpr double kRefineThreshold = 0.05;

struct Scenario {
  const char* name;
  simdata::GeneratorConfig config;
};

std::vector<Scenario> Scenarios() {
  std::vector<Scenario> scenarios;
  {
    Scenario s{"madsen-browning-ld", {}};
    s.config.num_patients = 70;
    s.config.num_snps = 64;
    s.config.num_sets = 8;
    s.config.seed = kSeed;
    scenarios.push_back(s);
  }
  {
    Scenario s{"unit-weights-no-ld", {}};
    s.config.num_patients = 60;
    s.config.num_snps = 48;
    s.config.num_sets = 6;
    s.config.seed = kSeed + 1;
    s.config.weights = simdata::WeightScheme::kUnit;
    s.config.ld_block_size = 1;
    scenarios.push_back(s);
  }
  {
    Scenario s{"random-weights-rare", {}};
    s.config.num_patients = 80;
    s.config.num_snps = 56;
    s.config.num_sets = 7;
    s.config.seed = kSeed + 2;
    s.config.weights = simdata::WeightScheme::kRandom;
    s.config.maf_min = 0.01;
    s.config.maf_max = 0.10;
    scenarios.push_back(s);
  }
  return scenarios;
}

ResamplingResult RunStudy(const simdata::SyntheticDataset& dataset,
                     const ResamplingRequest& request) {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  options.seed = kSeed;
  engine::EngineContext ctx(options);
  PipelineConfig config;
  config.seed = kSeed;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  return RunResampling(pipeline, request).scores;
}

ResamplingRequest Request(PValueMethod method, std::uint64_t early_stop) {
  ResamplingRequest request(ResamplingMethod::kMonteCarlo, kReplicates);
  request.pvalue_method = method;
  request.refine_threshold = kRefineThreshold;
  request.early_stop = early_stop;
  return request;
}

double McSd(double p) {
  return std::sqrt(std::max(p * (1.0 - p), 1e-12) /
                   static_cast<double>(kReplicates));
}

/// The per-set tolerance from the file-header contract.
double Tolerance(double p_exhaustive, const SetInference* info) {
  double tol = 5.0 * McSd(p_exhaustive) + 0.03 * p_exhaustive;
  if (info != nullptr && info->early_stopped) {
    tol += 5.0 * p_exhaustive /
           std::sqrt(static_cast<double>(kEarlyStopH - 1));
  }
  return tol;
}

void ExpectClassificationAgrees(double p_exhaustive, double p_adaptive,
                                const std::string& where) {
  constexpr double kAlpha = 0.05;
  if (p_exhaustive >= 0.5 * kAlpha && p_exhaustive <= 2.0 * kAlpha) {
    return;  // exemption band: either call is defensible
  }
  EXPECT_EQ(p_exhaustive < kAlpha, p_adaptive < kAlpha)
      << where << ": exhaustive p=" << p_exhaustive << " vs adaptive p="
      << p_adaptive << " disagree at alpha=" << kAlpha;
}

TEST(HybridEquivalenceTest, AnalyticTailsMatchExhaustiveOnAllScenarios) {
  for (const Scenario& scenario : Scenarios()) {
    const simdata::SyntheticDataset dataset = simdata::Generate(scenario.config);
    const ResamplingResult exhaustive =
        RunStudy(dataset, Request(PValueMethod::kResampling, 0));
    for (PValueMethod method :
         {PValueMethod::kAnalytic, PValueMethod::kSaddlepoint}) {
      const ResamplingResult analytic = RunStudy(dataset, Request(method, 0));
      ASSERT_EQ(analytic.inference.size(), exhaustive.observed.size());
      for (const auto& [set_id, info] : analytic.inference) {
        const std::string where =
            std::string(scenario.name) + " set " + std::to_string(set_id) +
            (method == PValueMethod::kAnalytic ? " (analytic)"
                                               : " (saddlepoint)");
        // Pure analytic modes never consume replicates.
        EXPECT_FALSE(info.refined) << where;
        EXPECT_EQ(info.replicates_used, 0u) << where;
        const double p_exh = exhaustive.PValue(set_id);
        const double p_ana = analytic.PValue(set_id);
        EXPECT_NEAR(p_ana, p_exh, Tolerance(p_exh, nullptr)) << where;
        ExpectClassificationAgrees(p_exh, p_ana, where);
      }
    }
  }
}

TEST(HybridEquivalenceTest, HybridMatchesExhaustiveAndSavesReplicates) {
  for (const Scenario& scenario : Scenarios()) {
    const simdata::SyntheticDataset dataset = simdata::Generate(scenario.config);
    const ResamplingResult exhaustive =
        RunStudy(dataset, Request(PValueMethod::kResampling, 0));
    const ResamplingResult hybrid =
        RunStudy(dataset, Request(PValueMethod::kHybrid, kEarlyStopH));

    ASSERT_EQ(hybrid.inference.size(), exhaustive.observed.size());
    std::uint64_t consumed = 0;
    for (const auto& [set_id, info] : hybrid.inference) {
      const std::string where = std::string(scenario.name) + " set " +
                                std::to_string(set_id) + " (hybrid)";
      consumed += info.replicates_used;
      const double p_exh = exhaustive.PValue(set_id);
      const double p_hyb = hybrid.PValue(set_id);
      EXPECT_NEAR(p_hyb, p_exh, Tolerance(p_exh, &info)) << where;
      ExpectClassificationAgrees(p_exh, p_hyb, where);
      // A refined set really did screen in; an unrefined one screened out.
      EXPECT_EQ(info.refined, info.analytic_p < kRefineThreshold) << where;
      if (!info.refined) {
        EXPECT_EQ(info.replicates_used, 0u) << where;
      }
    }
    // The point of the hybrid mode: most sets screen out analytically and
    // the refined ones early-stop, so the run consumes a small fraction
    // of the exhaustive K×B budget (the bench gates the full ≥10×; this
    // cross-scenario floor is deliberately looser).
    const std::uint64_t budget =
        kReplicates * static_cast<std::uint64_t>(hybrid.inference.size());
    EXPECT_LE(consumed * 4, budget)
        << scenario.name << ": hybrid consumed " << consumed << " of "
        << budget;
  }
}

TEST(HybridEquivalenceTest, EarlyStoppingAloneMatchesExhaustive) {
  // pmethod=resampling + early_stop: every set is refined, clearly-null
  // sets stop at the h-th exceedance with the stopped h/L estimate.
  const Scenario scenario = Scenarios().front();
  const simdata::SyntheticDataset dataset = simdata::Generate(scenario.config);
  const ResamplingResult exhaustive =
      RunStudy(dataset, Request(PValueMethod::kResampling, 0));
  const ResamplingResult stopped =
      RunStudy(dataset, Request(PValueMethod::kResampling, kEarlyStopH));

  ASSERT_EQ(stopped.inference.size(), exhaustive.observed.size());
  ASSERT_EQ(stopped.early_stop_h, kEarlyStopH);
  std::uint64_t consumed = 0;
  std::size_t early_stops = 0;
  for (const auto& [set_id, info] : stopped.inference) {
    const std::string where =
        "set " + std::to_string(set_id) + " (early-stop)";
    EXPECT_TRUE(info.refined) << where;
    EXPECT_GT(info.replicates_used, 0u) << where;
    EXPECT_LE(info.replicates_used, kReplicates) << where;
    consumed += info.replicates_used;
    if (info.early_stopped) ++early_stops;
    const double p_exh = exhaustive.PValue(set_id);
    EXPECT_NEAR(stopped.PValue(set_id), p_exh, Tolerance(p_exh, &info))
        << where;
    // A set that refused to stop consumed the full budget and its counts
    // must agree with the exhaustive run exactly (same replicate stream).
    if (!info.early_stopped) {
      EXPECT_EQ(info.replicates_used, kReplicates) << where;
      EXPECT_EQ(stopped.exceed.at(set_id), exhaustive.exceed.at(set_id))
          << where;
    }
  }
  // Null-dominated data: most sets hit h exceedances within a few hundred
  // replicates, so early stopping alone already saves the bulk of K×B.
  EXPECT_GT(early_stops, 0u);
  EXPECT_LT(consumed,
            kReplicates * static_cast<std::uint64_t>(
                              stopped.inference.size()));
}

TEST(HybridEquivalenceTest, LegacyRunsCarryNoInferenceBaggage) {
  // A pure-resampling request must leave the adaptive fields untouched —
  // the representation-level guarantee behind hash compatibility.
  const Scenario scenario = Scenarios().front();
  const simdata::SyntheticDataset dataset = simdata::Generate(scenario.config);
  const ResamplingResult legacy =
      RunStudy(dataset, Request(PValueMethod::kResampling, 0));
  EXPECT_TRUE(legacy.inference.empty());
  EXPECT_EQ(legacy.early_stop_h, 0u);
}

}  // namespace
}  // namespace ss::core
