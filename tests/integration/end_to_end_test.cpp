// Full-system integration: generate -> stage to DFS -> distributed
// pipeline -> resampling -> p-values, with fault injection and
// virtual-cluster replay, cross-checked against the serial baseline.
#include <gtest/gtest.h>

#include "baseline/serial_skat.hpp"
#include "core/sparkscore.hpp"

namespace ss {
namespace {

simdata::GeneratorConfig StudyConfig() {
  simdata::GeneratorConfig config;
  config.num_patients = 70;
  config.num_snps = 80;
  config.num_sets = 8;
  config.seed = 2016;
  return config;
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  return options;
}

TEST(EndToEndTest, DfsStudyThroughMonteCarloMatchesSerial) {
  dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 16});
  const auto paths = simdata::GenerateToDfs(dfs, "/e2e", StudyConfig());
  ASSERT_TRUE(paths.ok());

  engine::EngineContext ctx(LocalOptions(), &dfs);
  core::PipelineConfig config;
  config.seed = 501;
  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  ASSERT_TRUE(pipeline.ok());
  const core::ResamplingResult result =
      core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, 30}).scores;

  // Serial reference over the same generated data.
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  const baseline::SkatAnalysis serial =
      baseline::SerialMonteCarlo(inputs, config.seed, 30);

  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    // The DFS path serializes times as text ("%.10g"), so scores agree to
    // the corresponding precision rather than bit-exactly.
    EXPECT_NEAR(result.observed.at(id), serial.observed[k],
                1e-6 * (1.0 + serial.observed[k]));
    EXPECT_EQ(result.exceed.at(id), serial.exceed_count[k]) << "set " << k;
  }
}

TEST(EndToEndTest, SurvivesNodeFailureMidResampling) {
  dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 16});
  const auto paths = simdata::GenerateToDfs(dfs, "/e2e", StudyConfig());
  ASSERT_TRUE(paths.ok());

  // Run once cleanly for reference. Per-replicate scheduling (batch=1)
  // keeps the task count high enough that the injected failure lands
  // mid-resampling rather than during input parsing.
  core::PipelineConfig config;
  config.seed = 502;
  config.resampling_batch_size = 1;
  core::ResamplingResult clean;
  {
    engine::EngineContext ctx(LocalOptions(), &dfs);
    auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
    ASSERT_TRUE(pipeline.ok());
    clean = core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, 10}).scores;
  }

  // Run again with a node failure injected mid-flight: cached partitions
  // on node 1 are dropped and recomputed via lineage.
  cluster::FaultInjector faults;
  engine::EngineContext ctx(LocalOptions(), &dfs, &faults);
  faults.FailNodeAfterTasks(1, 25);
  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  ASSERT_TRUE(pipeline.ok());
  const core::ResamplingResult failed =
      core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, 10}).scores;

  ASSERT_TRUE(faults.HasFired(1));
  for (const auto& [set_id, count] : clean.exceed) {
    EXPECT_EQ(failed.exceed.at(set_id), count) << "set " << set_id;
  }
}

TEST(EndToEndTest, ReplayProducesStrongScalingCurve) {
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  engine::EngineContext ctx(LocalOptions());
  core::PipelineConfig config;
  config.num_partitions = 64;  // enough tasks to occupy 18 nodes
  config.num_reducers = 16;
  core::SkatPipeline pipeline =
      core::SkatPipeline::FromMemory(ctx, dataset, config);
  core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 5}).scores;

  const auto points =
      core::TuneAcross(ctx, core::StrongScalingCandidates({6, 12, 18}));
  ASSERT_EQ(points.size(), 3u);
  // 6 nodes is strictly slowest (64-task stages need two waves on its 48
  // slots); 12 and 18 both fit one wave and may tie.
  EXPECT_EQ(points.back().topology.num_nodes, 6);
  EXPECT_NE(points.front().topology.num_nodes, 6);
  EXPECT_LT(points.front().report.total_s, points.back().report.total_s);
}

TEST(EndToEndTest, ReportFormatsTopHits) {
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  engine::EngineContext ctx(LocalOptions());
  core::SkatPipeline pipeline = core::SkatPipeline::FromMemory(ctx, dataset, {});
  const core::ResamplingResult result = core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 9}).scores;
  const std::string table = core::FormatTopHits(result, 3);
  EXPECT_NE(table.find("Top SNP-sets"), std::string::npos);
  EXPECT_NE(table.find("p-value"), std::string::npos);
  const std::string summary = core::SummarizeResult(result);
  EXPECT_NE(summary.find("B=9"), std::string::npos);
}

TEST(EndToEndTest, SkatOAndVariantScanSurviveNodeFailure) {
  // The two extension analyses under the same chaos as the SKAT path.
  dfs::MiniDfs dfs({.num_nodes = 4, .replication = 2, .block_lines = 16});
  const auto paths = simdata::GenerateToDfs(dfs, "/e2e", StudyConfig());
  ASSERT_TRUE(paths.ok());

  core::PipelineConfig config;
  config.seed = 909;
  core::SkatOResult clean_skato;
  {
    engine::EngineContext ctx(LocalOptions(), &dfs);
    auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
    ASSERT_TRUE(pipeline.ok());
    clean_skato = core::RunResampling(pipeline.value(), {core::ResamplingMethod::kSkatO, 15}).skato;
  }
  cluster::FaultInjector faults;
  engine::EngineContext ctx(LocalOptions(), &dfs, &faults);
  faults.FailNodeAfterTasks(2, 30);
  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  ASSERT_TRUE(pipeline.ok());
  const core::SkatOResult chaotic = core::RunResampling(pipeline.value(), {core::ResamplingMethod::kSkatO, 15}).skato;
  ASSERT_TRUE(faults.HasFired(2));
  for (const auto& [set_id, per_set] : clean_skato.by_set) {
    EXPECT_DOUBLE_EQ(chaotic.by_set.at(set_id).pvalue, per_set.pvalue)
        << "set " << set_id;
  }
}

TEST(EndToEndTest, VariantScanDeterministicUnderTaskFailures) {
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  std::vector<simdata::SnpRecord> records;
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  core::VariantScanConfig config;
  config.replicates = 12;
  auto run = [&](cluster::FaultInjector* faults) {
    engine::EngineContext ctx(LocalOptions(), nullptr, faults);
    return core::RunVariantScan(ctx,
                                engine::Parallelize(ctx, records, 6),
                                stats::Phenotype::Cox(dataset.survival),
                                config);
  };
  const core::VariantScanResult clean = run(nullptr);
  cluster::FaultInjector faults;
  faults.FailTask(1, 2, 2);
  faults.FailNodeAfterTasks(1, 10);
  const core::VariantScanResult chaotic = run(&faults);
  for (const auto& [snp, count] : clean.exceed) {
    EXPECT_EQ(chaotic.exceed.at(snp), count) << "snp " << snp;
  }
  EXPECT_EQ(chaotic.replicate_max, clean.replicate_max);
}

TEST(EndToEndTest, ResultExportRoundTripsThroughDfs) {
  dfs::MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 16});
  const auto paths = simdata::GenerateToDfs(dfs, "/e2e", StudyConfig());
  ASSERT_TRUE(paths.ok());
  engine::EngineContext ctx(LocalOptions(), &dfs);
  core::PipelineConfig config;
  auto pipeline = core::SkatPipeline::Open(ctx, paths.value(), config);
  ASSERT_TRUE(pipeline.ok());
  const core::ResamplingResult result =
      core::RunResampling(pipeline.value(), {core::ResamplingMethod::kMonteCarlo, 9}).scores;
  ASSERT_TRUE(core::WriteResultToDfs(result, dfs, "/e2e/results.txt").ok());
  // Survives a node failure thanks to replication.
  dfs.KillNode(0);
  auto restored = core::ReadResultFromDfs(dfs, "/e2e/results.txt");
  ASSERT_TRUE(restored.ok());
  for (const auto& [set_id, score] : result.observed) {
    EXPECT_DOUBLE_EQ(restored.value().observed.at(set_id), score);
  }
}

TEST(EndToEndTest, MonteCarloReusesWorkAcrossReplicates) {
  // The cached-U speedup (Fig 4/5): MC replicates must not recompute the
  // genotype -> U lineage. Verified structurally via cache hit counts.
  // With batching, each engine pass serves a whole batch, so the cached U
  // is read once per batch (here 20 replicates / batch=4 = 5 batches)
  // instead of once per replicate — strictly fewer reads, never a rebuild.
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  engine::EngineContext ctx(LocalOptions());
  core::PipelineConfig config;
  config.num_partitions = 4;
  config.resampling_batch_size = 4;
  core::SkatPipeline pipeline =
      core::SkatPipeline::FromMemory(ctx, dataset, config);
  core::RunResampling(pipeline, {core::ResamplingMethod::kMonteCarlo, 20}).scores;
  const auto stats = ctx.cache().stats();
  // One insertion per U partition plus one per packed-genotype partition
  // (both datasets are cached); >= 5 batches * partitions hits, and no
  // re-insertions (the lineage was never recomputed).
  EXPECT_EQ(stats.insertions, 8u);
  EXPECT_GE(stats.hits, 20u);
}

}  // namespace
}  // namespace ss
