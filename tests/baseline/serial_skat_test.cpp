#include "baseline/serial_skat.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "stats/resampling.hpp"

namespace ss::baseline {
namespace {

simdata::SyntheticDataset SmallDataset(std::uint64_t seed = 21) {
  simdata::GeneratorConfig config;
  config.num_patients = 80;
  config.num_snps = 60;
  config.num_sets = 6;
  config.seed = seed;
  return simdata::Generate(config);
}

struct Fixture {
  simdata::SyntheticDataset dataset = SmallDataset();
  stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                    &dataset.sets};
};

TEST(SerialObservedTest, ShapeAndNonNegativity) {
  Fixture f;
  const SkatAnalysis analysis = SerialObserved(f.inputs);
  ASSERT_EQ(analysis.observed.size(), 6u);
  for (double s : analysis.observed) EXPECT_GE(s, 0.0);
  EXPECT_EQ(analysis.replicates, 0u);
}

TEST(SerialObservedTest, MatchesHandComputedSkat) {
  Fixture f;
  const SkatAnalysis analysis = SerialObserved(f.inputs);
  // Recompute set 0's statistic directly from definitions.
  stats::ScoreEngine engine(f.phenotype);
  double expected = 0.0;
  for (std::uint32_t snp : f.dataset.sets[0].snps) {
    const auto u = engine.Contributions(f.dataset.genotypes.by_snp[snp]);
    const double score = std::accumulate(u.begin(), u.end(), 0.0);
    const double w = f.dataset.weights[snp];
    expected += w * w * score * score;
  }
  EXPECT_NEAR(analysis.observed[0], expected, 1e-9);
}

TEST(SerialPermutationTest, CountersBounded) {
  Fixture f;
  const SkatAnalysis analysis = SerialPermutation(f.inputs, 5, 20);
  EXPECT_EQ(analysis.replicates, 20u);
  for (std::uint64_t c : analysis.exceed_count) EXPECT_LE(c, 20u);
}

TEST(SerialPermutationTest, DeterministicInSeed) {
  Fixture f;
  const SkatAnalysis a = SerialPermutation(f.inputs, 5, 10);
  const SkatAnalysis b = SerialPermutation(f.inputs, 5, 10);
  EXPECT_EQ(a.exceed_count, b.exceed_count);
  EXPECT_EQ(a.observed, b.observed);
}

TEST(SerialPermutationTest, ObservedUnchangedByResampling) {
  Fixture f;
  const SkatAnalysis observed_only = SerialObserved(f.inputs);
  const SkatAnalysis resampled = SerialPermutation(f.inputs, 5, 8);
  EXPECT_EQ(observed_only.observed, resampled.observed);
}

TEST(SerialMonteCarloTest, DeterministicInSeed) {
  Fixture f;
  const SkatAnalysis a = SerialMonteCarlo(f.inputs, 5, 10);
  const SkatAnalysis b = SerialMonteCarlo(f.inputs, 5, 10);
  EXPECT_EQ(a.exceed_count, b.exceed_count);
}

TEST(SerialMonteCarloTest, ObservedMatchesPermutationObserved) {
  Fixture f;
  EXPECT_EQ(SerialMonteCarlo(f.inputs, 1, 2).observed,
            SerialPermutation(f.inputs, 1, 2).observed);
}

TEST(SerialMonteCarloTest, FirstReplicateMatchesDirectComputation) {
  Fixture f;
  const SkatAnalysis analysis = SerialMonteCarlo(f.inputs, 5, 1);
  // Recompute replicate 0 by hand for set 2.
  stats::ScoreEngine engine(f.phenotype);
  const stats::MonteCarloWeights mc(5, f.phenotype.n(), 1);
  double replicate = 0.0;
  for (std::uint32_t snp : f.dataset.sets[2].snps) {
    const auto u = engine.Contributions(f.dataset.genotypes.by_snp[snp]);
    const double score = stats::MonteCarloReplicateScore(u, mc.Get(0));
    const double w = f.dataset.weights[snp];
    replicate += w * w * score * score;
  }
  const std::uint64_t expected_count =
      replicate >= analysis.observed[2] ? 1 : 0;
  EXPECT_EQ(analysis.exceed_count[2], expected_count);
}

TEST(SerialMonteCarloTest, BatchedEqualsPerReplicateForEveryBatchSize) {
  // The batched serial path uses the same Z-block + blocked-MAC machinery
  // as the distributed driver; it must be bitwise equal to the
  // per-replicate loop regardless of how the replicates are blocked.
  Fixture f;
  const SkatAnalysis reference = SerialMonteCarlo(f.inputs, 5, 23);
  for (std::uint64_t batch : {1u, 4u, 7u, 23u, 64u}) {
    const SkatAnalysis batched =
        SerialMonteCarloBatched(f.inputs, 5, 23, batch);
    EXPECT_EQ(batched.observed, reference.observed) << "batch " << batch;
    EXPECT_EQ(batched.exceed_count, reference.exceed_count)
        << "batch " << batch;
    EXPECT_EQ(batched.replicates, reference.replicates);
  }
}

TEST(SerialMonteCarloTest, ReplicateStatisticsMatchExceedCounts) {
  // The per-replicate statistic stream must reproduce the exceedance
  // counters when folded by hand (it is the oracle for ProgressSink).
  Fixture f;
  const SkatAnalysis analysis = SerialMonteCarlo(f.inputs, 9, 14);
  const std::vector<std::vector<double>> stream =
      SerialMonteCarloReplicateStatistics(f.inputs, 9, 14);
  ASSERT_EQ(stream.size(), 14u);
  std::vector<std::uint64_t> counts(analysis.observed.size(), 0);
  for (const std::vector<double>& statistics : stream) {
    ASSERT_EQ(statistics.size(), analysis.observed.size());
    for (std::size_t k = 0; k < statistics.size(); ++k) {
      if (statistics[k] >= analysis.observed[k]) ++counts[k];
    }
  }
  EXPECT_EQ(counts, analysis.exceed_count);
}

TEST(SerialAnalysisTest, PValuesUseAddOneEstimator) {
  Fixture f;
  SkatAnalysis analysis = SerialMonteCarlo(f.inputs, 5, 9);
  for (std::size_t k = 0; k < analysis.observed.size(); ++k) {
    EXPECT_DOUBLE_EQ(
        analysis.PValue(k),
        (static_cast<double>(analysis.exceed_count[k]) + 1.0) / 10.0);
  }
}

TEST(SerialAnalysisTest, NullDataGivesUniformishPValues) {
  // Under H0 (our generator's genotypes are independent of survival),
  // p-values should not pile up near 0: check the mean is near 0.5.
  Fixture f;
  const SkatAnalysis analysis = SerialMonteCarlo(f.inputs, 17, 100);
  double sum = 0.0;
  for (std::size_t k = 0; k < 6; ++k) sum += analysis.PValue(k);
  EXPECT_GT(sum / 6.0, 0.15);
  EXPECT_LT(sum / 6.0, 0.85);
}

}  // namespace
}  // namespace ss::baseline
