// Format battery for the persistent genotype store: round-trip, reopen,
// and the fail-closed corruption matrix the ISSUE pins — corrupt header,
// truncated frame index, torn final frame, wrong-endianness magic — each
// refusing with DataLoss and a counted `store.corrupt`.
#include "dfs/genotype_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/trace.hpp"

namespace ss::dfs {
namespace {

std::uint64_t CorruptCount() {
  return engine::CounterRegistry::Global().Get("store.corrupt").load();
}

std::string TempStorePath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<std::uint8_t> Payload(std::uint8_t tag, std::size_t size) {
  std::vector<std::uint8_t> bytes(size);
  for (std::size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<std::uint8_t>(tag + i * 7);
  }
  return bytes;
}

/// Stages a 3-partition store with distinguishable payloads per frame.
std::string WriteSampleStore(const std::string& name) {
  const std::string path = TempStorePath(name);
  GenotypeStoreMeta meta;
  meta.num_partitions = 3;
  meta.num_snps = 30;
  meta.num_patients = 7;
  meta.fingerprint = 0xFEEDBEEF;
  auto writer = GenotypeStoreWriter::Create(path, meta);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (std::uint32_t p = 0; p < meta.num_partitions; ++p) {
    EXPECT_TRUE(writer.value()
                    ->Append(StoreFrameKind::kGenotypes, p, Payload(p, 100))
                    .ok());
  }
  EXPECT_TRUE(
      writer.value()->Append(StoreFrameKind::kPhenotype, 0, Payload(10, 40)).ok());
  EXPECT_TRUE(
      writer.value()->Append(StoreFrameKind::kWeights, 0, Payload(11, 40)).ok());
  EXPECT_TRUE(
      writer.value()->Append(StoreFrameKind::kSets, 0, Payload(12, 40)).ok());
  const std::string description = "sample store provenance";
  EXPECT_TRUE(writer.value()
                  ->Append(StoreFrameKind::kDescription, 0,
                           std::vector<std::uint8_t>(description.begin(),
                                                     description.end()))
                  .ok());
  EXPECT_TRUE(writer.value()->Finish().ok());
  return path;
}

/// Overwrites `count` bytes at `offset` with their bitwise complement.
void FlipBytes(const std::string& path, std::uint64_t offset,
               std::uint64_t count) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good()) << path;
  for (std::uint64_t i = 0; i < count; ++i) {
    char byte = 0;
    file.seekg(static_cast<std::streamoff>(offset + i));
    file.read(&byte, 1);
    ASSERT_TRUE(file.good());
    byte = static_cast<char>(~byte);
    file.seekp(static_cast<std::streamoff>(offset + i));
    file.write(&byte, 1);
    ASSERT_TRUE(file.good());
  }
}

void Truncate(const std::string& path, std::uint64_t new_size) {
  std::filesystem::resize_file(path, new_size);
}

TEST(GenotypeStoreTest, RoundTripReadsEveryFrame) {
  const std::string path = WriteSampleStore("ss_store_roundtrip.ssg");
  auto store = GenotypeStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store.value()->num_partitions(), 3u);
  EXPECT_EQ(store.value()->meta().num_snps, 30u);
  EXPECT_EQ(store.value()->meta().num_patients, 7u);
  EXPECT_EQ(store.value()->fingerprint(), 0xFEEDBEEFu);
  EXPECT_EQ(store.value()->description(), "sample store provenance");
  for (std::uint32_t p = 0; p < 3; ++p) {
    auto frame = store.value()->ReadGenotypeFrame(p);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame.value(), Payload(p, 100)) << "partition " << p;
  }
  auto weights = store.value()->ReadAuxFrame(StoreFrameKind::kWeights);
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ(weights.value(), Payload(11, 40));
}

TEST(GenotypeStoreTest, ReopenServesSameBytes) {
  // Two independent Opens of one staged file (the reopen contract: a
  // later process maps the same file; no writer involved).
  const std::string path = WriteSampleStore("ss_store_reopen.ssg");
  auto first = GenotypeStore::Open(path);
  ASSERT_TRUE(first.ok());
  auto again = GenotypeStore::Open(path);
  ASSERT_TRUE(again.ok());
  for (std::uint32_t p = 0; p < 3; ++p) {
    auto a = first.value()->ReadGenotypeFrame(p);
    auto b = again.value()->ReadGenotypeFrame(p);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value(), b.value());
  }
  EXPECT_EQ(first.value()->fingerprint(), again.value()->fingerprint());
}

TEST(GenotypeStoreTest, MissingFileIsNotFoundAndNotCorrupt) {
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(TempStorePath("ss_store_missing.ssg"));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CorruptCount(), before);  // absent != corrupt
}

TEST(GenotypeStoreTest, WriterRejectsBadAppends) {
  const std::string path = TempStorePath("ss_store_badappend.ssg");
  GenotypeStoreMeta meta;
  meta.num_partitions = 2;
  auto writer = GenotypeStoreWriter::Create(path, meta);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(
      writer.value()->Append(StoreFrameKind::kGenotypes, 0, Payload(1, 8)).ok());
  EXPECT_EQ(writer.value()
                ->Append(StoreFrameKind::kGenotypes, 0, Payload(1, 8))
                .code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(writer.value()
                ->Append(StoreFrameKind::kGenotypes, 2, Payload(1, 8))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(writer.value()
                ->Append(StoreFrameKind::kWeights, 1, Payload(1, 8))
                .code(),
            StatusCode::kInvalidArgument);
  // Finish with missing frames refuses (no partial store published).
  EXPECT_EQ(writer.value()->Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(GenotypeStoreTest, ZeroPartitionsRefused) {
  EXPECT_EQ(GenotypeStoreWriter::Create(TempStorePath("ss_store_zero.ssg"), {})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GenotypeStoreTest, CorruptHeaderFailsClosed) {
  const std::string path = WriteSampleStore("ss_store_badheader.ssg");
  FlipBytes(path, 16, 4);  // inside num_snps: checksum no longer matches
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().ToString().find("header checksum"),
            std::string::npos)
      << store.status().ToString();
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, WrongEndiannessMagicIsDiagnosed) {
  const std::string path = WriteSampleStore("ss_store_endian.ssg");
  // Byte-swap the magic in place: "SSGSTOR1" -> "1ROTSGSS", exactly what
  // a big-endian writer would have produced.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  char magic[8];
  file.read(magic, 8);
  std::swap(magic[0], magic[7]);
  std::swap(magic[1], magic[6]);
  std::swap(magic[2], magic[5]);
  std::swap(magic[3], magic[4]);
  file.seekp(0);
  file.write(magic, 8);
  file.close();
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().ToString().find("opposite-endianness"),
            std::string::npos)
      << store.status().ToString();
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, NotAStoreAtAllIsBadMagic) {
  const std::string path = TempStorePath("ss_store_textfile.ssg");
  std::ofstream(path) << "this is not a genotype store but is long enough "
                         "to clear the minimum header size check easily";
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_NE(store.status().ToString().find("bad magic"), std::string::npos);
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, TruncatedIndexFailsClosed) {
  const std::string path = WriteSampleStore("ss_store_shortindex.ssg");
  // Cut inside the pre-allocated index region: header survives, index
  // cannot — the distinguishable "truncated index" failure mode.
  Truncate(path, 72 + 24);  // header + one index entry of seven
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().ToString().find("frame index truncated"),
            std::string::npos)
      << store.status().ToString();
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, TornFinalFrameFailsClosed) {
  const std::string path = WriteSampleStore("ss_store_torn.ssg");
  // Cut 10 bytes off the end: the index (near the front) is intact, so
  // the diagnostic names a torn frame, not a truncated index.
  Truncate(path, std::filesystem::file_size(path) - 10);
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(store.status().ToString().find("torn frame"), std::string::npos)
      << store.status().ToString();
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, FlippedPayloadByteFailsTheRead) {
  const std::string path = WriteSampleStore("ss_store_bitrot.ssg");
  auto store = GenotypeStore::Open(path);
  ASSERT_TRUE(store.ok());
  // Open succeeds (index + header fine); the damaged frame fails its
  // checksum only when read, and other frames stay readable. The flipped
  // byte sits 20 bytes from EOF — inside the last appended frame's
  // payload (the 23-byte description) — and the MAP_SHARED mapping sees
  // the file write immediately.
  FlipBytes(path, std::filesystem::file_size(path) - 20, 1);
  const std::uint64_t before = CorruptCount();
  auto intact = store.value()->ReadGenotypeFrame(0);
  ASSERT_TRUE(intact.ok()) << intact.status().ToString();
  auto damaged = store.value()->ReadAuxFrame(StoreFrameKind::kDescription);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(damaged.status().ToString().find("payload checksum"),
            std::string::npos)
      << damaged.status().ToString();
  EXPECT_EQ(CorruptCount(), before + 1);
}

TEST(GenotypeStoreTest, UnfinishedStoreFailsClosed) {
  // A crash mid-stage leaves the zero-filled header placeholder; Open
  // must refuse it (zeros are not the magic).
  const std::string path = TempStorePath("ss_store_crashed.ssg");
  GenotypeStoreMeta meta;
  meta.num_partitions = 2;
  auto writer = GenotypeStoreWriter::Create(path, meta);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(
      writer.value()->Append(StoreFrameKind::kGenotypes, 0, Payload(3, 32)).ok());
  writer.value().reset();  // close without Finish
  const std::uint64_t before = CorruptCount();
  auto store = GenotypeStore::Open(path);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(CorruptCount(), before + 1);
}

}  // namespace
}  // namespace ss::dfs
