#include "dfs/dfs.hpp"

#include <gtest/gtest.h>

namespace ss::dfs {
namespace {

std::vector<std::string> Lines(int n) {
  std::vector<std::string> lines;
  lines.reserve(n);
  for (int i = 0; i < n; ++i) lines.push_back("line-" + std::to_string(i));
  return lines;
}

TEST(MiniDfsTest, WriteReadRoundTrip) {
  MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 10});
  const auto lines = Lines(25);
  ASSERT_TRUE(dfs.WriteTextFile("/f", lines).ok());
  auto got = dfs.ReadTextFile("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), lines);
}

TEST(MiniDfsTest, BlockCountMatchesBlockLines) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 10});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(25)).ok());
  EXPECT_EQ(dfs.BlockCount("/f").value(), 3u);  // 10 + 10 + 5
}

TEST(MiniDfsTest, ExactBlockBoundary) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 10});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(20)).ok());
  EXPECT_EQ(dfs.BlockCount("/f").value(), 2u);
  EXPECT_EQ(dfs.ReadTextFile("/f").value().size(), 20u);
}

TEST(MiniDfsTest, EmptyFileHasOneEmptyBlock) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 10});
  ASSERT_TRUE(dfs.WriteTextFile("/empty", {}).ok());
  EXPECT_EQ(dfs.BlockCount("/empty").value(), 1u);
  EXPECT_TRUE(dfs.ReadTextFile("/empty").value().empty());
}

TEST(MiniDfsTest, DuplicateWriteFails) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 4});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(2)).ok());
  EXPECT_EQ(dfs.WriteTextFile("/f", Lines(2)).code(),
            StatusCode::kAlreadyExists);
}

TEST(MiniDfsTest, ReadMissingFileIsNotFound) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 4});
  EXPECT_EQ(dfs.ReadTextFile("/nope").status().code(), StatusCode::kNotFound);
}

TEST(MiniDfsTest, ReadBlockLines) {
  MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 3});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(7)).ok());
  auto block1 = dfs.ReadBlockLines("/f", 1);
  ASSERT_TRUE(block1.ok());
  EXPECT_EQ(block1.value(),
            (std::vector<std::string>{"line-3", "line-4", "line-5"}));
  EXPECT_EQ(dfs.ReadBlockLines("/f", 9).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MiniDfsTest, SurvivesNodeLossWithReplication) {
  MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 5});
  const auto lines = Lines(30);
  ASSERT_TRUE(dfs.WriteTextFile("/f", lines).ok());
  dfs.KillNode(0);
  auto got = dfs.ReadTextFile("/f");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), lines);
}

TEST(MiniDfsTest, DataLossWhenAllReplicasGone) {
  MiniDfs dfs({.num_nodes = 2, .replication = 2, .block_lines = 5});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(10)).ok());
  dfs.KillNode(0);
  dfs.KillNode(1);
  EXPECT_EQ(dfs.ReadTextFile("/f").status().code(), StatusCode::kDataLoss);
}

TEST(MiniDfsTest, ChecksumFailureFailsOverToReplica) {
  MiniDfs dfs({.num_nodes = 2, .replication = 2, .block_lines = 5});
  const auto lines = Lines(5);
  ASSERT_TRUE(dfs.WriteTextFile("/f", lines).ok());
  // Corrupt the primary replica; the read must silently use the second.
  const auto meta = dfs.name_node().Lookup("/f").value();
  ASSERT_TRUE(dfs.CorruptReplica("/f", 0, meta.blocks[0].replica_nodes[0]).ok());
  auto got = dfs.ReadTextFile("/f");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), lines);
}

TEST(MiniDfsTest, AllReplicasCorruptIsDataLoss) {
  MiniDfs dfs({.num_nodes = 2, .replication = 2, .block_lines = 5});
  ASSERT_TRUE(dfs.WriteTextFile("/f", Lines(5)).ok());
  const auto meta = dfs.name_node().Lookup("/f").value();
  for (int node : meta.blocks[0].replica_nodes) {
    ASSERT_TRUE(dfs.CorruptReplica("/f", 0, node).ok());
  }
  EXPECT_EQ(dfs.ReadTextFile("/f").status().code(), StatusCode::kDataLoss);
}

TEST(MiniDfsTest, RepairReplicationRestoresRedundancy) {
  MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 5});
  const auto lines = Lines(10);
  ASSERT_TRUE(dfs.WriteTextFile("/f", lines).ok());
  dfs.KillNode(0);
  const int repaired = dfs.RepairReplication();
  EXPECT_GT(repaired, 0);
  // Now even losing another original holder keeps the data readable.
  dfs.KillNode(1);
  auto got = dfs.ReadTextFile("/f");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), lines);
}

TEST(MiniDfsTest, ReviveAllowsNewWritesToNode) {
  MiniDfs dfs({.num_nodes = 2, .replication = 2, .block_lines = 5});
  dfs.KillNode(0);
  ASSERT_TRUE(dfs.WriteTextFile("/a", Lines(3)).ok());  // single live node
  dfs.ReviveNode(0);
  ASSERT_TRUE(dfs.WriteTextFile("/b", Lines(3)).ok());
  EXPECT_TRUE(dfs.ReadTextFile("/b").ok());
}

TEST(MiniDfsTest, WriteFailsWithNoLiveNodes) {
  MiniDfs dfs({.num_nodes = 1, .replication = 1, .block_lines = 5});
  dfs.KillNode(0);
  EXPECT_EQ(dfs.WriteTextFile("/f", Lines(1)).code(),
            StatusCode::kResourceExhausted);
}

TEST(MiniDfsTest, TotalBytesReflectReplication) {
  MiniDfs dfs1({.num_nodes = 4, .replication = 1, .block_lines = 100});
  MiniDfs dfs2({.num_nodes = 4, .replication = 2, .block_lines = 100});
  ASSERT_TRUE(dfs1.WriteTextFile("/f", Lines(50)).ok());
  ASSERT_TRUE(dfs2.WriteTextFile("/f", Lines(50)).ok());
  EXPECT_EQ(dfs2.TotalBytesStored(), 2 * dfs1.TotalBytesStored());
}

/// Property sweep: round trip across block sizes and line counts.
class DfsRoundTripSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DfsRoundTripSweep, RoundTrips) {
  const auto [block_lines, num_lines] = GetParam();
  MiniDfs dfs({.num_nodes = 3,
               .replication = 2,
               .block_lines = static_cast<std::uint32_t>(block_lines)});
  const auto lines = Lines(num_lines);
  ASSERT_TRUE(dfs.WriteTextFile("/f", lines).ok());
  EXPECT_EQ(dfs.ReadTextFile("/f").value(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DfsRoundTripSweep,
    ::testing::Combine(::testing::Values(1, 2, 7, 64),
                       ::testing::Values(0, 1, 13, 100)));

}  // namespace
}  // namespace ss::dfs
