#include "dfs/block_store.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ss::dfs {
namespace {

BlockId Id(std::uint64_t file, std::uint32_t index) { return {file, index}; }

TEST(BlockStoreTest, PutAndGet) {
  BlockStore store;
  store.Put(Id(1, 0), {1, 2, 3});
  auto got = store.Get(Id(1, 0));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(BlockStoreTest, GetMissingIsNotFound) {
  BlockStore store;
  EXPECT_EQ(store.Get(Id(1, 0)).status().code(), StatusCode::kNotFound);
}

TEST(BlockStoreTest, OverwriteUpdatesAccounting) {
  BlockStore store;
  store.Put(Id(1, 0), std::vector<std::uint8_t>(100));
  EXPECT_EQ(store.bytes_stored(), 100u);
  store.Put(Id(1, 0), std::vector<std::uint8_t>(40));
  EXPECT_EQ(store.bytes_stored(), 40u);
  EXPECT_EQ(store.block_count(), 1u);
}

TEST(BlockStoreTest, EraseRemovesAndIsIdempotent) {
  BlockStore store;
  store.Put(Id(2, 1), {9});
  store.Erase(Id(2, 1));
  EXPECT_FALSE(store.Get(Id(2, 1)).ok());
  EXPECT_EQ(store.bytes_stored(), 0u);
  store.Erase(Id(2, 1));  // no-op
}

TEST(BlockStoreTest, CorruptFlipsBits) {
  BlockStore store;
  store.Put(Id(3, 0), {0, 0, 0});
  ASSERT_TRUE(store.Corrupt(Id(3, 0)).ok());
  EXPECT_NE(store.Get(Id(3, 0)).value(), (std::vector<std::uint8_t>{0, 0, 0}));
}

TEST(BlockStoreTest, CorruptMissingFails) {
  BlockStore store;
  EXPECT_EQ(store.Corrupt(Id(3, 0)).code(), StatusCode::kFailedPrecondition);
}

TEST(BlockStoreTest, ClearDropsEverything) {
  BlockStore store;
  store.Put(Id(1, 0), {1});
  store.Put(Id(1, 1), {2});
  store.Clear();
  EXPECT_EQ(store.block_count(), 0u);
  EXPECT_EQ(store.bytes_stored(), 0u);
}

TEST(BlockStoreTest, ConcurrentPutsAreSafe) {
  BlockStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t]() {
      for (std::uint32_t i = 0; i < 100; ++i) {
        store.Put(Id(static_cast<std::uint64_t>(t), i),
                  std::vector<std::uint8_t>(10));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(store.block_count(), 400u);
  EXPECT_EQ(store.bytes_stored(), 4000u);
}

}  // namespace
}  // namespace ss::dfs
