#include "dfs/namenode.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ss::dfs {
namespace {

TEST(NameNodeTest, CreateAndLookup) {
  NameNode nn(4, 2);
  auto id = nn.CreateFile("/a.txt");
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(nn.Exists("/a.txt"));
  auto meta = nn.Lookup("/a.txt");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().file_id, id.value());
  EXPECT_EQ(meta.value().path, "/a.txt");
}

TEST(NameNodeTest, DuplicateCreateFails) {
  NameNode nn(4, 2);
  ASSERT_TRUE(nn.CreateFile("/a").ok());
  EXPECT_EQ(nn.CreateFile("/a").status().code(), StatusCode::kAlreadyExists);
}

TEST(NameNodeTest, LookupMissingIsNotFound) {
  NameNode nn(4, 2);
  EXPECT_EQ(nn.Lookup("/nope").status().code(), StatusCode::kNotFound);
}

TEST(NameNodeTest, PlacementUsesDistinctLiveNodes) {
  NameNode nn(5, 3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<int> targets = nn.PlaceBlock();
    ASSERT_EQ(targets.size(), 3u);
    std::set<int> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(NameNodeTest, PlacementSkipsDeadNodes) {
  NameNode nn(3, 2);
  nn.SetNodeAlive(1, false);
  for (int trial = 0; trial < 10; ++trial) {
    for (int node : nn.PlaceBlock()) {
      EXPECT_NE(node, 1);
    }
  }
}

TEST(NameNodeTest, PlacementSpreadsLoad) {
  NameNode nn(4, 1);
  std::vector<int> counts(4, 0);
  for (int trial = 0; trial < 40; ++trial) {
    ++counts[nn.PlaceBlock()[0]];
  }
  for (int c : counts) EXPECT_EQ(c, 10);  // perfect round-robin
}

TEST(NameNodeTest, ReplicationClampedToNodeCount) {
  NameNode nn(2, 5);
  EXPECT_EQ(nn.replication(), 2);
  EXPECT_EQ(nn.PlaceBlock().size(), 2u);
}

TEST(NameNodeTest, CommitBlocksInOrder) {
  NameNode nn(2, 1);
  const auto id = nn.CreateFile("/f").value();
  BlockMeta b0;
  b0.id = {id, 0};
  EXPECT_TRUE(nn.CommitBlock(id, b0).ok());
  BlockMeta b2;
  b2.id = {id, 2};  // skipping index 1
  EXPECT_EQ(nn.CommitBlock(id, b2).code(), StatusCode::kInvalidArgument);
}

TEST(NameNodeTest, CommitToUnknownFileFails) {
  NameNode nn(2, 1);
  BlockMeta meta;
  EXPECT_EQ(nn.CommitBlock(999, meta).code(), StatusCode::kNotFound);
}

TEST(NameNodeTest, UpdateReplicasRewritesSet) {
  NameNode nn(4, 2);
  const auto id = nn.CreateFile("/f").value();
  BlockMeta meta;
  meta.id = {id, 0};
  meta.replica_nodes = {0, 1};
  ASSERT_TRUE(nn.CommitBlock(id, meta).ok());
  ASSERT_TRUE(nn.UpdateReplicas(id, 0, {2, 3}).ok());
  EXPECT_EQ(nn.Lookup("/f").value().blocks[0].replica_nodes,
            (std::vector<int>{2, 3}));
}

TEST(NameNodeTest, ListFilesReturnsAllPaths) {
  NameNode nn(2, 1);
  ASSERT_TRUE(nn.CreateFile("/x").ok());
  ASSERT_TRUE(nn.CreateFile("/y").ok());
  auto files = nn.ListFiles();
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files, (std::vector<std::string>{"/x", "/y"}));
}

TEST(NameNodeTest, LivenessRoundTrip) {
  NameNode nn(3, 1);
  EXPECT_TRUE(nn.IsNodeAlive(2));
  nn.SetNodeAlive(2, false);
  EXPECT_FALSE(nn.IsNodeAlive(2));
  nn.SetNodeAlive(2, true);
  EXPECT_TRUE(nn.IsNodeAlive(2));
}

}  // namespace
}  // namespace ss::dfs
