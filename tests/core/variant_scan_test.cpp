#include "core/variant_scan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/record_traits.hpp"
#include "simdata/generator.hpp"
#include "stats/cox_score.hpp"
#include "stats/distributions_math.hpp"
#include "support/distributions.hpp"

namespace ss::core {
namespace {

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

struct Fixture {
  simdata::SyntheticDataset dataset;
  std::vector<simdata::SnpRecord> records;

  explicit Fixture(std::uint64_t seed = 55, std::uint32_t snps = 40,
                   std::uint32_t patients = 80) {
    simdata::GeneratorConfig config;
    config.num_patients = patients;
    config.num_snps = snps;
    config.num_sets = 4;
    config.seed = seed;
    dataset = simdata::Generate(config);
    for (std::uint32_t j = 0; j < snps; ++j) {
      records.push_back({j, dataset.genotypes.by_snp[j]});
    }
  }
};

TEST(VariantScanTest, ObservedMatchesDirectComputation) {
  Fixture f;
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 0;
  const VariantScanResult result = RunVariantScan(
      ctx, engine::Parallelize(ctx, f.records, 4),
      stats::Phenotype::Cox(f.dataset.survival), config);

  ASSERT_EQ(result.by_snp.size(), 40u);
  const stats::RiskSetIndex index(f.dataset.survival);
  for (std::uint32_t j = 0; j < 40; ++j) {
    const auto u = stats::CoxScoreContributions(f.dataset.survival, index,
                                                f.dataset.genotypes.by_snp[j]);
    const double score = stats::CoxScoreStatistic(u);
    const double variance = stats::CoxScoreVariance(u);
    const VariantStats& got = result.by_snp.at(j);
    EXPECT_NEAR(got.score, score, 1e-9);
    EXPECT_NEAR(got.variance, variance, 1e-9);
    EXPECT_NEAR(got.asymptotic_p, stats::ScoreTestPValue(score, variance),
                1e-12);
  }
}

TEST(VariantScanTest, EmpiricalPValuesCalibratedUnderNull) {
  // Under the null, empirical and asymptotic p-values should broadly
  // agree; check means are both unremarkable.
  Fixture f(77, 30, 120);
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 99;
  const VariantScanResult result = RunVariantScan(
      ctx, engine::Parallelize(ctx, f.records, 4),
      stats::Phenotype::Cox(f.dataset.survival), config);

  double sum_emp = 0.0;
  for (std::uint32_t j = 0; j < 30; ++j) {
    const double p = result.EmpiricalP(j);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum_emp += p;
  }
  EXPECT_GT(sum_emp / 30.0, 0.25);
  EXPECT_LT(sum_emp / 30.0, 0.75);
}

TEST(VariantScanTest, MaxTAdjustmentIsMoreConservative) {
  Fixture f(78, 25, 100);
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 49;
  const VariantScanResult result = RunVariantScan(
      ctx, engine::Parallelize(ctx, f.records, 4),
      stats::Phenotype::Cox(f.dataset.survival), config);
  for (std::uint32_t j = 0; j < 25; ++j) {
    EXPECT_GE(result.MaxTAdjustedP(j) + 1e-12, result.EmpiricalP(j));
  }
  EXPECT_EQ(result.replicate_max.size(), 49u);
}

TEST(VariantScanTest, PlantedSignalRanksFirst) {
  Fixture f(79, 30, 300);
  // Rebuild survival with a strong effect of SNP 5.
  Rng rng(99);
  for (std::uint32_t i = 0; i < 300; ++i) {
    const double g = f.dataset.genotypes.by_snp[5][i];
    f.dataset.survival.time[i] =
        SampleExponential(rng, (1.0 / 12.0) * std::exp(1.0 * g));
    f.dataset.survival.event[i] = SampleBernoulli(rng, 0.85) ? 1 : 0;
  }
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 99;
  const VariantScanResult result = RunVariantScan(
      ctx, engine::Parallelize(ctx, f.records, 4),
      stats::Phenotype::Cox(f.dataset.survival), config);
  EXPECT_EQ(result.RankedByAsymptoticP().front(), 5u);
  EXPECT_LT(result.by_snp.at(5).asymptotic_p, 1e-4);
  EXPECT_LE(result.MaxTAdjustedP(5), 0.05);
}

TEST(VariantScanTest, DeterministicInSeed) {
  Fixture f;
  VariantScanConfig config;
  config.replicates = 20;
  config.seed = 123;
  engine::EngineContext ctx1(LocalOptions());
  engine::EngineContext ctx2(LocalOptions());
  const VariantScanResult a = RunVariantScan(
      ctx1, engine::Parallelize(ctx1, f.records, 4),
      stats::Phenotype::Cox(f.dataset.survival), config);
  const VariantScanResult b = RunVariantScan(
      ctx2, engine::Parallelize(ctx2, f.records, 3),  // different partitioning
      stats::Phenotype::Cox(f.dataset.survival), config);
  for (std::uint32_t j = 0; j < 40; ++j) {
    EXPECT_EQ(a.exceed.at(j), b.exceed.at(j)) << "snp " << j;
  }
  EXPECT_EQ(a.replicate_max, b.replicate_max);
}

TEST(VariantScanTest, GaussianPhenotypeSupported) {
  Fixture f(81, 20, 100);
  stats::QuantitativeData expression;
  for (int i = 0; i < 100; ++i) {
    expression.value.push_back(static_cast<double>(i % 9));
  }
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 10;
  const VariantScanResult result =
      RunVariantScan(ctx, engine::Parallelize(ctx, f.records, 4),
                     stats::Phenotype::Gaussian(expression), config);
  EXPECT_EQ(result.by_snp.size(), 20u);
}

TEST(VariantScanTest, UsesCachedContributions) {
  Fixture f;
  engine::EngineContext ctx(LocalOptions());
  VariantScanConfig config;
  config.replicates = 15;
  config.num_partitions = 4;
  RunVariantScan(ctx, engine::Parallelize(ctx, f.records, 4),
                 stats::Phenotype::Cox(f.dataset.survival), config);
  const auto stats = ctx.cache().stats();
  EXPECT_EQ(stats.insertions, 4u);   // U cached once per partition
  EXPECT_GE(stats.hits, 15u * 4u);   // every replicate reuses it
}

}  // namespace
}  // namespace ss::core
