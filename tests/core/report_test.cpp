// Result reporting: table formatting and the DFS round trip.
#include "core/report.hpp"

#include <gtest/gtest.h>

namespace ss::core {
namespace {

ResamplingResult SampleResult() {
  ResamplingResult result;
  result.replicates = 99;
  result.observed = {{0, 10.5}, {1, 3.25}, {2, 77.0}};
  result.exceed = {{0, 4}, {1, 50}, {2, 0}};
  return result;
}

TEST(ReportTest, TopHitsOrderedByPValue) {
  const std::string table = FormatTopHits(SampleResult(), 3);
  // Set 2 (0 exceedances) must be rank 1.
  const std::size_t pos2 = table.find("| 1    | 2  ");
  const std::size_t pos0 = table.find("| 2    | 0  ");
  EXPECT_NE(pos2, std::string::npos) << table;
  EXPECT_NE(pos0, std::string::npos) << table;
  EXPECT_LT(pos2, pos0);
}

TEST(ReportTest, SummaryNamesBestSet) {
  const std::string summary = SummarizeResult(SampleResult());
  EXPECT_NE(summary.find("best set 2"), std::string::npos);
  EXPECT_NE(summary.find("B=99"), std::string::npos);
}

TEST(ReportDfsTest, RoundTrip) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  const ResamplingResult original = SampleResult();
  ASSERT_TRUE(WriteResultToDfs(original, dfs, "/results.txt").ok());

  auto restored = ReadResultFromDfs(dfs, "/results.txt");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().replicates, 99u);
  ASSERT_EQ(restored.value().observed.size(), 3u);
  for (const auto& [set_id, score] : original.observed) {
    EXPECT_DOUBLE_EQ(restored.value().observed.at(set_id), score);
    EXPECT_EQ(restored.value().exceed.at(set_id), original.exceed.at(set_id));
    EXPECT_DOUBLE_EQ(restored.value().PValue(set_id), original.PValue(set_id));
  }
}

TEST(ReportDfsTest, FileIsSortedByPValueWithHeader) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  ASSERT_TRUE(WriteResultToDfs(SampleResult(), dfs, "/r.txt").ok());
  const auto lines = dfs.ReadTextFile("/r.txt").value();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].front(), '#');
  EXPECT_EQ(lines[1].front(), '2');  // smallest p-value first
}

TEST(ReportDfsTest, ReadRejectsMalformed) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  ASSERT_TRUE(dfs.WriteTextFile("/bad.txt", {"1 2 3"}).ok());
  EXPECT_FALSE(ReadResultFromDfs(dfs, "/bad.txt").ok());
  EXPECT_FALSE(ReadResultFromDfs(dfs, "/missing.txt").ok());
}

TEST(ReportDfsTest, DuplicateWriteFails) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 16});
  ASSERT_TRUE(WriteResultToDfs(SampleResult(), dfs, "/r.txt").ok());
  EXPECT_FALSE(WriteResultToDfs(SampleResult(), dfs, "/r.txt").ok());
}

}  // namespace
}  // namespace ss::core
