// Algorithms 2/3 end-to-end: exceedance counters, p-values, and exact
// agreement with the serial baseline from identical seeds.
#include "core/resampling_methods.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_skat.hpp"
#include "core/record_traits.hpp"

namespace ss::core {
namespace {

simdata::SyntheticDataset SmallDataset(std::uint64_t seed = 44) {
  simdata::GeneratorConfig config;
  config.num_patients = 50;
  config.num_snps = 40;
  config.num_sets = 4;
  config.seed = seed;
  return simdata::Generate(config);
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

TEST(ResamplingMethodsTest, ZeroReplicatesComputesOnlyObserved) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunMonteCarloMethod(pipeline, 0);
  EXPECT_EQ(result.replicates, 0u);
  EXPECT_EQ(result.observed.size(), 4u);
  for (const auto& [set_id, count] : result.exceed) EXPECT_EQ(count, 0u);
}

TEST(ResamplingMethodsTest, MonteCarloMatchesSerialBaselineExactly) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  PipelineConfig config;
  config.seed = 77;
  const baseline::SkatAnalysis serial =
      baseline::SerialMonteCarlo(inputs, config.seed, 25);

  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult distributed = RunMonteCarloMethod(pipeline, 25);

  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    EXPECT_NEAR(distributed.observed.at(id), serial.observed[k], 1e-9);
    EXPECT_EQ(distributed.exceed.at(id), serial.exceed_count[k]) << "set " << k;
    EXPECT_DOUBLE_EQ(distributed.PValue(id), serial.PValue(k));
  }
}

TEST(ResamplingMethodsTest, PermutationMatchesSerialBaselineExactly) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  PipelineConfig config;
  config.seed = 78;
  const baseline::SkatAnalysis serial =
      baseline::SerialPermutation(inputs, config.seed, 12);

  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult distributed = RunPermutationMethod(pipeline, 12);

  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    EXPECT_EQ(distributed.exceed.at(id), serial.exceed_count[k]) << "set " << k;
  }
}

TEST(ResamplingMethodsTest, MethodsAgreeOnObservedScores) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx1(LocalOptions());
  engine::EngineContext ctx2(LocalOptions());
  SkatPipeline p1 = SkatPipeline::FromMemory(ctx1, dataset, {});
  SkatPipeline p2 = SkatPipeline::FromMemory(ctx2, dataset, {});
  const ResamplingResult mc = RunMonteCarloMethod(p1, 3);
  const ResamplingResult perm = RunPermutationMethod(p2, 3);
  for (const auto& [set_id, score] : mc.observed) {
    EXPECT_NEAR(score, perm.observed.at(set_id), 1e-9);
  }
}

TEST(ResamplingMethodsTest, CallbackInvokedPerReplicate) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  std::vector<std::uint64_t> seen;
  RunMonteCarloMethod(pipeline, 5,
                      [&seen](std::uint64_t b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ResamplingMethodsTest, PValuesInUnitInterval) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunMonteCarloMethod(pipeline, 19);
  for (const auto& [set_id, score] : result.observed) {
    const double p = result.PValue(set_id);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ResamplingMethodsTest, RankedPValuesSortedAscending) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunMonteCarloMethod(pipeline, 9);
  const auto ranked = result.RankedPValues();
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].second, ranked[i].second);
  }
}

TEST(ResamplingMethodsTest, MoreReplicatesRefinePValueFloor) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult result = RunMonteCarloMethod(pipeline, 49);
  for (const auto& [set_id, score] : result.observed) {
    EXPECT_GE(result.PValue(set_id), 1.0 / 50.0);
  }
}

}  // namespace
}  // namespace ss::core
