// Algorithms 2/3 end-to-end: exceedance counters, p-values, and exact
// agreement with the serial baseline from identical seeds.
#include "core/resampling_methods.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "baseline/serial_skat.hpp"
#include "core/record_traits.hpp"

namespace ss::core {
namespace {

simdata::SyntheticDataset SmallDataset(std::uint64_t seed = 44) {
  simdata::GeneratorConfig config;
  config.num_patients = 50;
  config.num_snps = 40;
  config.num_sets = 4;
  config.seed = seed;
  return simdata::Generate(config);
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

TEST(ResamplingMethodsTest, ZeroReplicatesComputesOnlyObserved) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 0}).scores;
  EXPECT_EQ(result.replicates, 0u);
  EXPECT_EQ(result.observed.size(), 4u);
  for (const auto& [set_id, count] : result.exceed) EXPECT_EQ(count, 0u);
}

TEST(ResamplingMethodsTest, MonteCarloMatchesSerialBaselineExactly) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  PipelineConfig config;
  config.seed = 77;
  const baseline::SkatAnalysis serial =
      baseline::SerialMonteCarlo(inputs, config.seed, 25);

  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult distributed = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 25}).scores;

  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    EXPECT_NEAR(distributed.observed.at(id), serial.observed[k], 1e-9);
    EXPECT_EQ(distributed.exceed.at(id), serial.exceed_count[k]) << "set " << k;
    EXPECT_DOUBLE_EQ(distributed.PValue(id), serial.PValue(k));
  }
}

TEST(ResamplingMethodsTest, PermutationMatchesSerialBaselineExactly) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  PipelineConfig config;
  config.seed = 78;
  const baseline::SkatAnalysis serial =
      baseline::SerialPermutation(inputs, config.seed, 12);

  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult distributed = RunResampling(pipeline, {ResamplingMethod::kPermutation, 12}).scores;

  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    EXPECT_EQ(distributed.exceed.at(id), serial.exceed_count[k]) << "set " << k;
  }
}

TEST(ResamplingMethodsTest, MethodsAgreeOnObservedScores) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx1(LocalOptions());
  engine::EngineContext ctx2(LocalOptions());
  SkatPipeline p1 = SkatPipeline::FromMemory(ctx1, dataset, {});
  SkatPipeline p2 = SkatPipeline::FromMemory(ctx2, dataset, {});
  const ResamplingResult mc = RunResampling(p1, {ResamplingMethod::kMonteCarlo, 3}).scores;
  const ResamplingResult perm = RunResampling(p2, {ResamplingMethod::kPermutation, 3}).scores;
  for (const auto& [set_id, score] : mc.observed) {
    EXPECT_NEAR(score, perm.observed.at(set_id), 1e-9);
  }
}

TEST(ResamplingMethodsTest, SinkInvokedPerReplicate) {
  class RecordingSink final : public ProgressSink {
   public:
    void OnReplicate(std::uint64_t b) override { seen.push_back(b); }
    std::vector<std::uint64_t> seen;
  };
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  RecordingSink sink;
  ResamplingRequest request(ResamplingMethod::kMonteCarlo, 5);
  request.sink = &sink;
  RunResampling(pipeline, request);
  EXPECT_EQ(sink.seen, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(ResamplingMethodsTest, PValuesInUnitInterval) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 19}).scores;
  for (const auto& [set_id, score] : result.observed) {
    const double p = result.PValue(set_id);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ResamplingMethodsTest, RankedPValuesSortedAscending) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const ResamplingResult result = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 9}).scores;
  const auto ranked = result.RankedPValues();
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].second, ranked[i].second);
  }
}

bool BitEqual(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

void ExpectByteIdentical(const ResamplingResult& a, const ResamplingResult& b) {
  ASSERT_EQ(a.replicates, b.replicates);
  ASSERT_EQ(a.observed.size(), b.observed.size());
  for (const auto& [set_id, score] : a.observed) {
    ASSERT_TRUE(b.observed.count(set_id)) << "set " << set_id;
    EXPECT_TRUE(BitEqual(score, b.observed.at(set_id)))
        << "observed score for set " << set_id << " differs";
  }
  ASSERT_EQ(a.exceed.size(), b.exceed.size());
  for (const auto& [set_id, count] : a.exceed) {
    EXPECT_EQ(count, b.exceed.at(set_id)) << "set " << set_id;
  }
}

/// Fresh context + pipeline per run so no cached state leaks between the
/// configurations under comparison.
ResamplingResult RunWithRequest(const simdata::SyntheticDataset& dataset,
                                const ResamplingRequest& request,
                                std::uint64_t batch_size, std::uint64_t threads,
                                std::uint64_t config_seed = 77) {
  engine::EngineContext::Options options = LocalOptions();
  options.physical_threads = threads;
  engine::EngineContext ctx(options);
  PipelineConfig config;
  config.seed = config_seed;
  config.resampling_batch_size = batch_size;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  return RunResampling(pipeline, request).scores;
}

TEST(ResamplingMethodsTest, MonteCarloBitwiseInvariantToBatchSize) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 25;
  const ResamplingResult one = RunWithRequest(dataset, request, 1, 4);
  const ResamplingResult seven = RunWithRequest(dataset, request, 7, 4);
  const ResamplingResult big = RunWithRequest(dataset, request, 64, 4);
  ExpectByteIdentical(one, seven);
  ExpectByteIdentical(one, big);
}

TEST(ResamplingMethodsTest, MonteCarloBitwiseInvariantToThreadCount) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 20;
  request.batch_size = 5;
  ExpectByteIdentical(RunWithRequest(dataset, request, 0, 1),
                      RunWithRequest(dataset, request, 0, 4));
}

TEST(ResamplingMethodsTest, BatchedMonteCarloBitwiseEqualsSerialBaseline) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  const baseline::SkatAnalysis serial =
      baseline::SerialMonteCarlo(inputs, 77, 25);

  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 25;
  const ResamplingResult distributed = RunWithRequest(dataset, request, 8, 4);
  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    const std::uint32_t id = dataset.sets[k].id;
    EXPECT_TRUE(BitEqual(distributed.observed.at(id), serial.observed[k]))
        << "set " << k;
    EXPECT_EQ(distributed.exceed.at(id), serial.exceed_count[k]) << "set " << k;
  }
}

TEST(ResamplingMethodsTest, ReplicateScoreStreamMatchesSerialOracle) {
  // OnReplicateScores must deliver every replicate's statistics, in order,
  // bit-for-bit equal to the serial oracle — regardless of batching.
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  const std::vector<std::vector<double>> serial =
      baseline::SerialMonteCarloReplicateStatistics(inputs, 77, 11);

  struct Recorder final : ProgressSink {
    std::vector<std::pair<std::uint64_t, SetScores>> stream;
    void OnReplicateScores(std::uint64_t b, const SetScores& scores) override {
      stream.push_back({b, scores});
    }
  } recorder;
  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 11;
  request.batch_size = 4;
  request.sink = &recorder;
  RunWithRequest(dataset, request, 0, 4);

  ASSERT_EQ(recorder.stream.size(), 11u);
  for (std::uint64_t b = 0; b < 11; ++b) {
    EXPECT_EQ(recorder.stream[b].first, b);
    for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
      const std::uint32_t id = dataset.sets[k].id;
      EXPECT_TRUE(BitEqual(recorder.stream[b].second.at(id), serial[b][k]))
          << "replicate " << b << " set " << k;
    }
  }
}

TEST(ResamplingMethodsTest, SinkReportsBatchBoundaries) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  struct Recorder final : ProgressSink {
    std::vector<std::vector<std::uint64_t>> begins;
    std::vector<std::vector<std::uint64_t>> ends;
    std::vector<std::uint64_t> replicates;
    void OnBatchBegin(std::uint64_t index, std::uint64_t begin,
                      std::uint64_t end) override {
      begins.push_back({index, begin, end});
    }
    void OnReplicate(std::uint64_t b) override { replicates.push_back(b); }
    void OnBatchEnd(std::uint64_t index, std::uint64_t begin,
                    std::uint64_t end) override {
      ends.push_back({index, begin, end});
    }
  } recorder;
  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 10;
  request.batch_size = 4;
  request.sink = &recorder;
  RunWithRequest(dataset, request, 0, 4);

  const std::vector<std::vector<std::uint64_t>> expected = {
      {0, 0, 4}, {1, 4, 8}, {2, 8, 10}};
  EXPECT_EQ(recorder.begins, expected);
  EXPECT_EQ(recorder.ends, expected);
  EXPECT_EQ(recorder.replicates,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ResamplingMethodsTest, UnifiedPermutationMatchesLegacyWrapper) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  ResamplingRequest request;
  request.method = ResamplingMethod::kPermutation;
  request.replicates = 12;
  const ResamplingResult unified = RunWithRequest(dataset, request, 3, 4, 78);

  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.seed = 78;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  ExpectByteIdentical(unified, RunResampling(pipeline, {ResamplingMethod::kPermutation, 12}).scores);
}

TEST(ResamplingMethodsTest, SkatOBitwiseInvariantToBatchSize) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  auto run = [&dataset](std::uint64_t batch) {
    engine::EngineContext ctx(LocalOptions());
    PipelineConfig config;
    config.seed = 77;
    config.resampling_batch_size = batch;
    SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
    ResamplingRequest request;
    request.method = ResamplingMethod::kSkatO;
    request.replicates = 15;
    return RunResampling(pipeline, request).skato;
  };
  const SkatOResult one = run(1);
  const SkatOResult big = run(64);
  ASSERT_EQ(one.by_set.size(), big.by_set.size());
  for (const auto& [set_id, per_set] : one.by_set) {
    const auto& other = big.by_set.at(set_id);
    EXPECT_TRUE(BitEqual(per_set.skat, other.skat)) << "set " << set_id;
    EXPECT_TRUE(BitEqual(per_set.burden, other.burden)) << "set " << set_id;
    EXPECT_TRUE(BitEqual(per_set.pvalue, other.pvalue)) << "set " << set_id;
  }
}

TEST(ResamplingMethodsTest, RequestSeedOverridesPipelineSeed) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  ResamplingRequest plain;
  plain.method = ResamplingMethod::kMonteCarlo;
  plain.replicates = 9;
  ResamplingRequest overridden = plain;
  overridden.seed = 123;
  // config.seed=123 with no override ≡ config.seed=77 with seed=123.
  ExpectByteIdentical(RunWithRequest(dataset, overridden, 4, 4, 77),
                      RunWithRequest(dataset, plain, 4, 4, 123));
}

TEST(ResamplingMethodsTest, MoreReplicatesRefinePValueFloor) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult result = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 49}).scores;
  for (const auto& [set_id, score] : result.observed) {
    EXPECT_GE(result.PValue(set_id), 1.0 / 50.0);
  }
}

}  // namespace
}  // namespace ss::core
