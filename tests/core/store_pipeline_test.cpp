// Store-backed pipeline semantics: OpenFromStore must be a drop-in,
// bitwise-equal replacement for the in-memory (and spill-backed) paths —
// pinned via the order-independent `resampling.result_hash` across
// threads {1,4} x prefetch {0,2} — and the store file must behave as the
// genotype dataset's spill tier: reopened without re-staging, refused on
// fingerprint mismatch, re-read (not recomputed from text) after an
// eviction drop, and streamed ahead of the compute wave by the prefetch
// lane's registered fetcher.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/resampling_methods.hpp"
#include "core/store_source.hpp"
#include "dfs/genotype_store.hpp"
#include "engine/executor.hpp"
#include "engine/trace.hpp"
#include "simdata/store_codec.hpp"

namespace ss::core {
namespace {

simdata::GeneratorConfig StudyConfig() {
  simdata::GeneratorConfig config;
  config.num_patients = 40;
  config.num_snps = 60;
  config.num_sets = 6;
  config.seed = 99;
  return config;
}

std::string StorePath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// Stages StudyConfig() at `partitions` partitions (once per file name).
std::string StageStore(const std::string& name, std::uint32_t partitions) {
  const std::string path = StorePath(name);
  auto staged = simdata::GenerateToStore(StudyConfig(), path, partitions);
  EXPECT_TRUE(staged.ok()) << staged.status().ToString();
  return path;
}

engine::EngineContext::Options LocalOptions(std::size_t threads = 4) {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = threads;
  options.seed = 99;
  return options;
}

PipelineConfig StudyPipelineConfig() {
  PipelineConfig config;
  config.seed = 99;
  config.num_partitions = 4;  // 60 SNPs / 4 = 15 rows, exactly 4 frames
  config.num_reducers = 4;
  return config;
}

std::uint64_t Counter(const char* name) {
  return engine::CounterRegistry::Global().Get(name).load();
}

/// Monte Carlo resampling under the given prefetch depth; returns the
/// run's `resampling.result_hash` contribution.
std::uint64_t ResamplingHash(SkatPipeline& pipeline, int prefetch) {
  const std::uint64_t before = Counter("resampling.result_hash");
  ResamplingRequest request(ResamplingMethod::kMonteCarlo, 16);
  engine::ExecConfig exec;
  exec.prefetch_depth = prefetch;
  exec.io_threads = 1;
  request.exec = exec;
  RunResampling(pipeline, request);
  return Counter("resampling.result_hash") - before;
}

TEST(StorePipelineTest, ObservedScoresBitwiseEqualInMemory) {
  const std::string path = StageStore("ss_store_observed.ssg", 4);
  engine::EngineContext store_ctx(LocalOptions());
  auto opened = SkatPipeline::OpenFromStore(store_ctx, path,
                                            StudyPipelineConfig());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value().config().pack_genotypes);  // implied by store
  const SetScores from_store = opened.value().ComputeObserved();

  engine::EngineContext mem_ctx(LocalOptions());
  SkatPipeline in_memory = SkatPipeline::FromMemory(
      mem_ctx, simdata::Generate(StudyConfig()), StudyPipelineConfig());
  const SetScores expected = in_memory.ComputeObserved();
  ASSERT_EQ(from_store.size(), expected.size());
  for (const auto& [set_id, score] : expected) {
    ASSERT_TRUE(from_store.contains(set_id));
    EXPECT_EQ(from_store.at(set_id), score) << "set " << set_id;  // bitwise
  }
}

TEST(StorePipelineTest, ResultHashInvariantAcrossBackingsThreadsPrefetch) {
  // The ISSUE's differential matrix: {in-memory, spill-backed,
  // store-backed} x threads {1,4} x prefetch {0,2}, one hash.
  const std::string path = StageStore("ss_store_differential.ssg", 4);
  const simdata::GeneratorConfig generator = StudyConfig();
  std::uint64_t golden = 0;
  bool have_golden = false;
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (int prefetch : {0, 2}) {
      const std::string cell = "threads=" + std::to_string(threads) +
                               " prefetch=" + std::to_string(prefetch);
      std::vector<std::uint64_t> hashes;

      {  // In-memory, unlimited budget.
        engine::EngineContext ctx(LocalOptions(threads));
        SkatPipeline pipeline = SkatPipeline::FromMemory(
            ctx, simdata::Generate(generator), StudyPipelineConfig());
        hashes.push_back(ResamplingHash(pipeline, prefetch));
      }
      {  // Spill-backed: budget small enough to churn the spill tier.
        engine::EngineContext::Options options = LocalOptions(threads);
        options.cache_capacity_bytes = 6000;
        options.cache_spill = true;
        engine::EngineContext ctx(options);
        SkatPipeline pipeline = SkatPipeline::FromMemory(
            ctx, simdata::Generate(generator), StudyPipelineConfig());
        hashes.push_back(ResamplingHash(pipeline, prefetch));
      }
      {  // Store-backed under the same tight budget (drop-on-evict path).
        engine::EngineContext ctx(LocalOptions(threads));
        PipelineConfig config = StudyPipelineConfig();
        config.cache_budget_bytes = 6000;
        auto opened = SkatPipeline::OpenFromStore(
            ctx, path, config, simdata::StoreFingerprint(generator));
        ASSERT_TRUE(opened.ok()) << cell << ": " << opened.status().ToString();
        hashes.push_back(ResamplingHash(opened.value(), prefetch));
      }

      for (std::uint64_t hash : hashes) {
        if (!have_golden) {
          golden = hash;
          have_golden = true;
        }
        EXPECT_EQ(hash, golden) << cell;
      }
    }
  }
}

TEST(StorePipelineTest, ReopenServesPartitionsWithoutRestaging) {
  // Satellite: a "second process" (fresh context) reopens the store and
  // reloads partitions checksum-verified — zero re-staging writes, all
  // genotype bytes served from the existing file.
  const std::string path = StageStore("ss_store_reopen_run.ssg", 4);
  const std::uint64_t writes_after_staging = Counter("store.frame_writes");

  SetScores first;
  {
    engine::EngineContext ctx(LocalOptions());
    auto opened = SkatPipeline::OpenFromStore(ctx, path, StudyPipelineConfig());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    first = opened.value().ComputeObserved();
  }
  const std::uint64_t reads_before = Counter("store.frame_reads");
  {
    engine::EngineContext ctx(LocalOptions());
    auto reopened =
        SkatPipeline::OpenFromStore(ctx, path, StudyPipelineConfig());
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    const SetScores second = reopened.value().ComputeObserved();
    ASSERT_EQ(second.size(), first.size());
    for (const auto& [set_id, score] : first) {
      EXPECT_EQ(second.at(set_id), score) << "set " << set_id;
    }
  }
  // The reopen read real frames (aux + genotype partitions)...
  EXPECT_GE(Counter("store.frame_reads"), reads_before + 4u + 4u);
  // ...and wrote none: reopening never silently re-stages.
  EXPECT_EQ(Counter("store.frame_writes"), writes_after_staging);
}

TEST(StorePipelineTest, FingerprintMismatchRefusedWithDiagnostic) {
  const std::string path = StageStore("ss_store_mismatch.ssg", 4);
  const std::uint64_t writes_before = Counter("store.frame_writes");
  engine::EngineContext ctx(LocalOptions());
  const std::uint64_t staged = simdata::StoreFingerprint(StudyConfig());
  auto opened = SkatPipeline::OpenFromStore(ctx, path, StudyPipelineConfig(),
                                            staged + 1);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
  const std::string diagnostic = opened.status().ToString();
  // Clear refusal: names both fingerprints and the staged provenance.
  EXPECT_NE(diagnostic.find(std::to_string(staged)), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find(std::to_string(staged + 1)), std::string::npos)
      << diagnostic;
  EXPECT_NE(diagnostic.find(simdata::StoreFingerprintText(StudyConfig())),
            std::string::npos)
      << diagnostic;
  // No silent re-ingest: the mismatch wrote nothing.
  EXPECT_EQ(Counter("store.frame_writes"), writes_before);

  // The right fingerprint (or none) opens fine.
  EXPECT_TRUE(SkatPipeline::OpenFromStore(ctx, path, StudyPipelineConfig(),
                                          staged)
                  .ok());
}

TEST(StorePipelineTest, EvictionDropsToStoreAndRereadsFrames) {
  // The store is the dataset's spill tier: under an unlimited budget a
  // second pass over the genotypes is pure cache hits (no new frame
  // reads); under a tight budget evicted partitions are DROPPED (no
  // second on-disk copy) and the next pass re-reads their frames.
  const std::string path = StageStore("ss_store_evict.ssg", 4);
  const std::vector<std::uint32_t> identity = [] {
    std::vector<std::uint32_t> perm(StudyConfig().num_patients);
    for (std::uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
    return perm;
  }();

  std::uint64_t unlimited_rereads = 0;
  {
    engine::EngineContext ctx(LocalOptions());
    auto opened = SkatPipeline::OpenFromStore(ctx, path, StudyPipelineConfig());
    ASSERT_TRUE(opened.ok());
    opened.value().ComputeObserved();
    const std::uint64_t after_observed = Counter("store.frame_reads");
    opened.value().ComputePermutationReplicate(identity);
    unlimited_rereads = Counter("store.frame_reads") - after_observed;
    EXPECT_EQ(unlimited_rereads, 0u);  // all four partitions were cached
  }
  {
    engine::EngineContext ctx(LocalOptions());
    PipelineConfig config = StudyPipelineConfig();
    config.cache_budget_bytes = 2000;  // far below one decoded partition set
    auto opened = SkatPipeline::OpenFromStore(ctx, path, config);
    ASSERT_TRUE(opened.ok());
    opened.value().ComputeObserved();
    const std::uint64_t after_observed = Counter("store.frame_reads");
    opened.value().ComputePermutationReplicate(identity);
    // Dropped partitions came back from the mmap, not from a spill copy.
    EXPECT_GT(Counter("store.frame_reads"), after_observed);
  }
}

TEST(StorePipelineTest, PrefetchLaneFetchesFramesViaRegisteredFetcher) {
  // Cache-level contract of the fetcher StoreGenotypeNode registers: a
  // Prefetch of an uncached store partition fetches + admits it (counted
  // as `store.prefetch_frames`, not as cache traffic), and after the node
  // unregisters, the same call is a no-op again.
  const std::string path = StageStore("ss_store_prefetch.ssg", 4);
  auto store = dfs::GenotypeStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  engine::EngineContext ctx(LocalOptions());
  auto membership = std::make_shared<const std::vector<std::uint8_t>>(
      StudyConfig().num_snps, std::uint8_t{1});
  auto node = std::make_shared<StoreGenotypeNode>(&ctx, store.value(),
                                                  membership);
  const engine::CacheKey key{node->id(), 1};

  const std::uint64_t fetched_before = Counter("store.prefetch_frames");
  const std::uint64_t insertions_before = ctx.cache().stats().insertions;
  ctx.cache().Prefetch(key);
  EXPECT_EQ(Counter("store.prefetch_frames"), fetched_before + 1);
  EXPECT_EQ(ctx.cache().stats().insertions, insertions_before);

  // The admitted value is the decoded partition, served as a plain hit.
  auto value = ctx.cache().Lookup(key);
  ASSERT_NE(value, nullptr);
  const auto& records =
      *std::static_pointer_cast<std::vector<stats::PackedSnpRecord>>(value);
  EXPECT_EQ(records.size(), 15u);  // 60 SNPs / 4 partitions
  EXPECT_EQ(records.front().snp, 15u);  // partition 1 starts at row 15

  // A second prefetch of the now-resident key is a no-op.
  ctx.cache().Prefetch(key);
  EXPECT_EQ(Counter("store.prefetch_frames"), fetched_before + 1);

  // Destroying the node unregisters the fetcher; prefetching an uncached
  // partition no-ops instead of touching a dead store handle.
  node.reset();
  const engine::CacheKey other{key.node_id, 2};
  ctx.cache().Prefetch(other);
  EXPECT_EQ(Counter("store.prefetch_frames"), fetched_before + 1);
  EXPECT_EQ(ctx.cache().Lookup(other), nullptr);
}

}  // namespace
}  // namespace ss::core
