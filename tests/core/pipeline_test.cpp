// Cross-validation of the distributed Algorithm 1 against the serial
// baseline, plus DFS-backed pipeline construction.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "baseline/serial_skat.hpp"
#include "core/record_traits.hpp"
#include "stats/resampling.hpp"

namespace ss::core {
namespace {

simdata::SyntheticDataset SmallDataset(std::uint64_t seed = 33) {
  simdata::GeneratorConfig config;
  config.num_patients = 60;
  config.num_snps = 50;
  config.num_sets = 5;
  config.seed = seed;
  return simdata::Generate(config);
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  return options;
}

baseline::SkatAnalysis SerialReference(const simdata::SyntheticDataset& dataset) {
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  return baseline::SerialObserved(inputs);
}

TEST(SkatPipelineTest, ObservedMatchesSerialBaseline) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const SetScores observed = pipeline.ComputeObserved();
  const baseline::SkatAnalysis reference = SerialReference(dataset);
  ASSERT_EQ(observed.size(), dataset.sets.size());
  for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
    ASSERT_TRUE(observed.contains(dataset.sets[k].id));
    EXPECT_NEAR(observed.at(dataset.sets[k].id), reference.observed[k], 1e-9)
        << "set " << k;
  }
}

TEST(SkatPipelineTest, ObservedIndependentOfPartitioning) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  SetScores previous;
  for (std::uint32_t partitions : {1u, 3u, 8u, 16u}) {
    engine::EngineContext ctx(LocalOptions());
    PipelineConfig config;
    config.num_partitions = partitions;
    config.num_reducers = partitions;
    SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
    const SetScores observed = pipeline.ComputeObserved();
    if (!previous.empty()) {
      for (const auto& [set_id, score] : observed) {
        EXPECT_NEAR(score, previous.at(set_id), 1e-9);
      }
    }
    previous = observed;
  }
}

TEST(SkatPipelineTest, DfsPipelineMatchesInMemory) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  dfs::MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 8});
  const simdata::StudyPaths paths = simdata::StudyPaths::Under("/study");
  ASSERT_TRUE(simdata::WriteStudy(dfs, paths, dataset).ok());

  engine::EngineContext ctx(LocalOptions(), &dfs);
  auto opened = SkatPipeline::Open(ctx, paths, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const SetScores from_dfs = opened.value().ComputeObserved();

  engine::EngineContext ctx2(LocalOptions());
  SkatPipeline in_memory = SkatPipeline::FromMemory(ctx2, dataset, {});
  const SetScores expected = in_memory.ComputeObserved();
  ASSERT_EQ(from_dfs.size(), expected.size());
  for (const auto& [set_id, score] : expected) {
    EXPECT_NEAR(from_dfs.at(set_id), score, 1e-9) << "set " << set_id;
  }
}

TEST(SkatPipelineTest, OpenMissingStudyFails) {
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 8});
  engine::EngineContext ctx(LocalOptions(), &dfs);
  EXPECT_FALSE(
      SkatPipeline::Open(ctx, simdata::StudyPaths::Under("/none"), {}).ok());
}

TEST(SkatPipelineTest, CorruptGenotypeLineFailsJob) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  dfs::MiniDfs dfs({.num_nodes = 2, .replication = 1, .block_lines = 8});
  simdata::StudyPaths paths = simdata::StudyPaths::Under("/s");
  ASSERT_TRUE(simdata::WriteStudy(dfs, paths, dataset).ok());
  // Overwrite the genotype file with a malformed record.
  paths.genotypes = "/s/bad_genotypes.txt";
  ASSERT_TRUE(dfs.WriteTextFile(paths.genotypes, {"not a record"}).ok());
  engine::EngineContext ctx(LocalOptions(), &dfs);
  auto pipeline = SkatPipeline::Open(ctx, paths, {});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_THROW(pipeline.value().ComputeObserved(), engine::TaskFailure);
}

TEST(SkatPipelineTest, MonteCarloReplicateMatchesSerial) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  const std::uint64_t seed = 5;
  const baseline::SkatAnalysis serial =
      baseline::SerialMonteCarlo(inputs, seed, 7);

  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.seed = seed;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const SetScores observed = pipeline.ComputeObserved();
  const stats::MonteCarloWeights weights(seed, dataset.survival.n(), 7);
  std::vector<std::uint64_t> exceed(dataset.sets.size(), 0);
  for (std::size_t b = 0; b < 7; ++b) {
    const SetScores replicate =
        pipeline.ComputeMonteCarloReplicate(weights.Get(b));
    for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
      if (replicate.at(dataset.sets[k].id) >=
          observed.at(dataset.sets[k].id)) {
        ++exceed[k];
      }
    }
  }
  EXPECT_EQ(exceed, serial.exceed_count);
}

TEST(SkatPipelineTest, PermutationReplicateMatchesSerial) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  const stats::Phenotype phenotype = stats::Phenotype::Cox(dataset.survival);
  baseline::SkatInputs inputs{&dataset.genotypes, &phenotype, &dataset.weights,
                              &dataset.sets};
  const std::uint64_t seed = 6;
  const baseline::SkatAnalysis serial =
      baseline::SerialPermutation(inputs, seed, 5);

  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.seed = seed;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const SetScores observed = pipeline.ComputeObserved();
  const stats::PermutationPlan plan(seed, dataset.survival.n(), 5);
  std::vector<std::uint64_t> exceed(dataset.sets.size(), 0);
  for (std::size_t b = 0; b < 5; ++b) {
    const SetScores replicate = pipeline.ComputePermutationReplicate(plan.Get(b));
    for (std::size_t k = 0; k < dataset.sets.size(); ++k) {
      if (replicate.at(dataset.sets[k].id) >=
          observed.at(dataset.sets[k].id)) {
        ++exceed[k];
      }
    }
  }
  EXPECT_EQ(exceed, serial.exceed_count);
}

TEST(SkatPipelineTest, CachingConfigControlsCacheUse) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  {
    engine::EngineContext ctx(LocalOptions());
    PipelineConfig config;
    config.cache_contributions = true;
    SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
    pipeline.ComputeObserved();
    EXPECT_GT(ctx.cache().stats().insertions, 0u);
    const auto before = ctx.cache().stats().hits;
    pipeline.ComputeMonteCarloReplicate(
        std::vector<double>(dataset.survival.n(), 1.0));
    EXPECT_GT(ctx.cache().stats().hits, before);  // replicate reused U
  }
  {
    engine::EngineContext ctx(LocalOptions());
    PipelineConfig config;
    config.cache_contributions = false;
    SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
    pipeline.ComputeObserved();
    EXPECT_EQ(ctx.cache().stats().insertions, 0u);
  }
}

TEST(SkatPipelineTest, MonteCarloRequiresObservedFirst) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  EXPECT_DEATH(pipeline.ComputeMonteCarloReplicate(
                   std::vector<double>(dataset.survival.n(), 1.0)),
               "u_built_");
}

TEST(SkatPipelineTest, GaussianStudyThroughDfs) {
  // A non-Cox phenotype staged with the model-tagged format opens and
  // matches the in-memory Gaussian pipeline.
  const simdata::SyntheticDataset dataset = SmallDataset();
  stats::QuantitativeData expression;
  for (std::size_t i = 0; i < dataset.survival.n(); ++i) {
    expression.value.push_back(static_cast<double>((i * 13) % 11));
  }
  dfs::MiniDfs dfs({.num_nodes = 3, .replication = 2, .block_lines = 8});
  const simdata::StudyPaths paths = simdata::StudyPaths::Under("/eqtl");
  ASSERT_TRUE(simdata::WriteStudyWithPhenotype(
                  dfs, paths, dataset, stats::Phenotype::Gaussian(expression))
                  .ok());

  engine::EngineContext ctx(LocalOptions(), &dfs);
  auto opened = SkatPipeline::Open(ctx, paths, {});
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().phenotype().model, stats::ScoreModel::kGaussian);
  EXPECT_EQ(opened.value().config().model, stats::ScoreModel::kGaussian);
  const SetScores from_dfs = opened.value().ComputeObserved();

  engine::EngineContext ctx2(LocalOptions());
  std::vector<simdata::SnpRecord> records;
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  SkatPipeline in_memory(ctx2, {}, engine::Parallelize(ctx2, records, 4),
                         stats::Phenotype::Gaussian(expression),
                         dataset.weights, dataset.sets);
  const SetScores expected = in_memory.ComputeObserved();
  for (const auto& [set_id, score] : expected) {
    EXPECT_NEAR(from_dfs.at(set_id), score, 1e-9 * (1.0 + score));
  }
}

TEST(SkatPipelineTest, FaithfulAndFastScoresAgree) {
  // The paper-faithful O(n²) Cox evaluation and the O(n) suffix-sum path
  // must produce identical set scores through the whole pipeline.
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx_fast(LocalOptions());
  engine::EngineContext ctx_faithful(LocalOptions());
  PipelineConfig fast;
  fast.paper_faithful_scores = false;
  PipelineConfig faithful;
  faithful.paper_faithful_scores = true;
  const SetScores a =
      SkatPipeline::FromMemory(ctx_fast, dataset, fast).ComputeObserved();
  const SetScores b = SkatPipeline::FromMemory(ctx_faithful, dataset, faithful)
                          .ComputeObserved();
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [set_id, score] : a) {
    EXPECT_NEAR(b.at(set_id), score, 1e-9 * (1.0 + score));
  }
}

TEST(SkatPipelineTest, GaussianModelPipeline) {
  // eQTL-style quantitative phenotype through the same dataflow.
  simdata::SyntheticDataset dataset = SmallDataset();
  stats::QuantitativeData expression;
  for (std::size_t i = 0; i < dataset.survival.n(); ++i) {
    expression.value.push_back(static_cast<double>(i % 7));
  }
  std::vector<simdata::SnpRecord> records;
  for (std::uint32_t j = 0; j < dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, dataset.genotypes.by_snp[j]});
  }
  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.model = stats::ScoreModel::kGaussian;
  SkatPipeline pipeline(ctx, config,
                        engine::Parallelize(ctx, records, 4),
                        stats::Phenotype::Gaussian(expression),
                        dataset.weights, dataset.sets);
  const SetScores observed = pipeline.ComputeObserved();

  // Cross-check one set against direct computation.
  stats::ScoreEngine engine(stats::Phenotype::Gaussian(expression));
  double expected = 0.0;
  for (std::uint32_t snp : dataset.sets[1].snps) {
    const auto u = engine.Contributions(dataset.genotypes.by_snp[snp]);
    double score = 0.0;
    for (double v : u) score += v;
    expected += dataset.weights[snp] * dataset.weights[snp] * score * score;
  }
  EXPECT_NEAR(observed.at(1), expected, 1e-9);
}

}  // namespace
}  // namespace ss::core
