// Profiler invariants over the real pipeline, across a scheduling matrix
// (threads {1,4} x resampling batch {1,64} x spill tier on/off):
//   * the analyzer's critical path never exceeds the measured wall-clock
//     (stages are driver-sequential, so the stage-binding chain is a
//     lower bound on the run span);
//   * every task's phase entries sum exactly to queue-wait + task wall
//     time (the derived-compute accounting in PhaseSecondsOf);
//   * profiling is observation-only: profile on vs off produces bitwise
//     identical resampling results (resampling.result_hash).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/pipeline.hpp"
#include "core/resampling_methods.hpp"
#include "engine/profile.hpp"
#include "engine/trace.hpp"

namespace ss::core {
namespace {

struct Cell {
  std::size_t threads = 4;
  std::uint64_t batch = 64;
  bool spill = false;  ///< Tight cache budget + spill tier vs unlimited.
};

std::string CellName(const Cell& cell) {
  return "threads=" + std::to_string(cell.threads) +
         " batch=" + std::to_string(cell.batch) +
         " spill=" + std::to_string(cell.spill);
}

struct CellRun {
  std::uint64_t result_hash = 0;  ///< Counter delta over the resampling.
  std::vector<engine::StageMetrics> stages;
};

CellRun RunCell(const Cell& cell, bool profile) {
  auto& hash_counter =
      engine::CounterRegistry::Global().Get("resampling.result_hash");
  const std::uint64_t before = hash_counter.load();
  engine::SetProfilingEnabled(profile);

  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = cell.threads;
  options.seed = 99;
  if (cell.spill) {
    // ~6 KB holds roughly one U partition of this study, forcing constant
    // eviction through the spill tier (same sizing as the soak matrix).
    options.cache_capacity_bytes = 6000;
    options.cache_spill = true;
  }
  engine::EngineContext ctx(options);

  simdata::GeneratorConfig generator;
  generator.num_patients = 40;
  generator.num_snps = 60;
  generator.num_sets = 6;
  generator.seed = 99;
  PipelineConfig config;
  config.seed = 99;
  config.num_partitions = 4;
  config.num_reducers = 4;
  config.resampling_batch_size = cell.batch;
  SkatPipeline pipeline =
      SkatPipeline::FromMemory(ctx, simdata::Generate(generator), config);

  ResamplingRequest request;
  request.method = ResamplingMethod::kMonteCarlo;
  request.replicates = 24;
  RunResampling(pipeline, request);

  engine::SetProfilingEnabled(true);  // restore the process default
  return {hash_counter.load() - before, ctx.metrics().stages()};
}

/// Per-task accounting at nanosecond resolution; 100ns of slack covers
/// clock-read granularity between the span and task timestamps.
constexpr double kPhaseSumTolerance = 1e-7;

void CheckProfileInvariants(const Cell& cell, const CellRun& run) {
  const engine::RunProfile profile = engine::BuildRunProfile(run.stages);
  ASSERT_TRUE(profile.collected) << CellName(cell);

  EXPECT_LE(profile.critical_path_seconds,
            profile.wall_seconds * (1 + 1e-9) + 1e-9)
      << CellName(cell);
  ASSERT_EQ(profile.critical_path.size(), profile.stages.size())
      << CellName(cell);

  for (const engine::StageMetrics& stage : run.stages) {
    // Profiling on means every successful task recorded a timeline.
    EXPECT_EQ(stage.timelines.size(), stage.task_seconds.size())
        << CellName(cell) << " stage " << stage.stage_id;
    for (const engine::TaskTimeline& t : stage.timelines) {
      EXPECT_GE(t.start_ns, t.enqueue_ns)
          << CellName(cell) << " stage " << stage.stage_id;
      EXPECT_GE(t.end_ns, t.start_ns)
          << CellName(cell) << " stage " << stage.stage_id;
      const auto seconds = engine::PhaseSecondsOf(t);
      double sum = 0.0;
      for (double s : seconds) {
        EXPECT_GE(s, 0.0) << CellName(cell);
        sum += s;
      }
      const double expected =
          static_cast<double>((t.start_ns - t.enqueue_ns) +
                              (t.end_ns - t.start_ns)) /
          1e9;
      EXPECT_NEAR(sum, expected, kPhaseSumTolerance)
          << CellName(cell) << " stage " << stage.stage_id << " partition "
          << t.partition;
    }
  }
}

TEST(ProfileInvariantTest, MatrixHoldsInvariantsAndBitwiseIdentity) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{64}}) {
      for (bool spill : {false, true}) {
        const Cell cell{threads, batch, spill};
        const CellRun with_profile = RunCell(cell, /*profile=*/true);
        CheckProfileInvariants(cell, with_profile);

        // The ablation: profiling off must change nothing but the
        // timelines themselves.
        const CellRun without_profile = RunCell(cell, /*profile=*/false);
        EXPECT_EQ(without_profile.result_hash, with_profile.result_hash)
            << CellName(cell) << ": profiling changed results";
        for (const engine::StageMetrics& stage : without_profile.stages) {
          EXPECT_TRUE(stage.timelines.empty())
              << CellName(cell) << " stage " << stage.stage_id
              << " recorded timelines with profiling off";
        }
      }
    }
  }
}

}  // namespace
}  // namespace ss::core
