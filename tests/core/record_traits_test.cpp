// Pins the ApproxBytes estimates and spill codecs for the genotype record
// types, so cache-budget accounting can't silently drift: SnpRecord must
// charge vector capacity (not size), and the packed representation must
// come out ~4x smaller for the same SNP.
#include "core/record_traits.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace ss::engine {
namespace {

static_assert(kSpillable<ss::simdata::SnpRecord>,
              "genotype partitions must be eligible for the spill tier");
static_assert(kSpillable<ss::stats::PackedSnpRecord>,
              "packed genotype partitions must be eligible for the spill tier");

TEST(RecordTraitsTest, SnpRecordApproxBytesChargesCapacityNotSize) {
  ss::simdata::SnpRecord record;
  record.snp = 7;
  record.genotypes.reserve(100);
  record.genotypes.resize(10, 1);
  ASSERT_GE(record.genotypes.capacity(), 100u);
  EXPECT_EQ(ApproxBytesOf(record),
            sizeof(record.snp) + sizeof(record.genotypes) +
                record.genotypes.capacity());
}

TEST(RecordTraitsTest, PackedRecordEstimateIsRoughlyFourTimesSmaller) {
  const std::size_t n = 1024;
  ss::simdata::SnpRecord record;
  record.snp = 3;
  record.genotypes.assign(n, 2);
  record.genotypes.shrink_to_fit();
  ss::stats::PackedSnpRecord packed{
      record.snp, ss::stats::PackedGenotypeBlock::Pack(record.genotypes)};

  const std::size_t unpacked_bytes = ApproxBytesOf(record);
  const std::size_t packed_bytes = ApproxBytesOf(packed);
  // Payloads are exactly 4x apart; the fixed struct overhead dilutes the
  // total ratio slightly, so assert a conservative 3x.
  EXPECT_EQ(packed.genotypes.payload().size(), n / 4);
  EXPECT_LT(packed_bytes * 3, unpacked_bytes);
}

TEST(RecordTraitsTest, PackedSnpRecordCodecRoundTripsThroughPartition) {
  ss::Rng rng(4411);
  std::vector<ss::stats::PackedSnpRecord> records;
  for (std::uint32_t snp = 0; snp < 16; ++snp) {
    std::vector<std::uint8_t> dosages(1 + rng.NextBounded(60));
    for (auto& d : dosages) d = static_cast<std::uint8_t>(rng.NextBounded(3));
    if (snp == 5) dosages.push_back(99);  // forces the raw-byte fallback
    records.push_back(
        {snp, ss::stats::PackedGenotypeBlock::Pack(dosages)});
  }
  const std::vector<std::uint8_t> bytes = EncodePartition(records);
  const std::vector<ss::stats::PackedSnpRecord> decoded =
      DecodePartition<ss::stats::PackedSnpRecord>(bytes);
  ASSERT_EQ(decoded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].snp, records[i].snp);
    EXPECT_EQ(decoded[i].genotypes, records[i].genotypes) << "snp " << i;
  }
}

}  // namespace
}  // namespace ss::engine
