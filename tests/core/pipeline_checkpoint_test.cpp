// U-RDD checkpointing through the pipeline: lineage truncation, identical
// results, and recovery from the replicated checkpoint after failures.
#include <gtest/gtest.h>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "engine/dataset_ops.hpp"
#include "stats/resampling.hpp"

namespace ss::core {
namespace {

simdata::GeneratorConfig StudyConfig() {
  simdata::GeneratorConfig config;
  config.num_patients = 50;
  config.num_snps = 40;
  config.num_sets = 4;
  config.seed = 71;
  return config;
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(3);
  options.physical_threads = 4;
  return options;
}

struct Env {
  dfs::MiniDfs dfs{{.num_nodes = 4, .replication = 2, .block_lines = 8}};
  simdata::StudyPaths paths;

  Env() {
    auto staged = simdata::GenerateToDfs(dfs, "/study", StudyConfig());
    paths = staged.value();
  }
};

TEST(PipelineCheckpointTest, ResultsIdenticalWithAndWithoutCheckpoint) {
  Env env;
  PipelineConfig plain;
  plain.seed = 5;
  PipelineConfig checkpointed = plain;
  checkpointed.checkpoint_contributions_path = "/ckpt/u";

  engine::EngineContext ctx1(LocalOptions(), &env.dfs);
  engine::EngineContext ctx2(LocalOptions(), &env.dfs);
  auto p1 = SkatPipeline::Open(ctx1, env.paths, plain);
  auto p2 = SkatPipeline::Open(ctx2, env.paths, checkpointed);
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  const ResamplingResult a = RunResampling(p1.value(), {ResamplingMethod::kMonteCarlo, 10}).scores;
  const ResamplingResult b = RunResampling(p2.value(), {ResamplingMethod::kMonteCarlo, 10}).scores;
  for (const auto& [set_id, count] : a.exceed) {
    EXPECT_EQ(b.exceed.at(set_id), count);
    EXPECT_NEAR(b.observed.at(set_id), a.observed.at(set_id), 1e-9);
  }
  EXPECT_TRUE(env.dfs.Exists("/ckpt/u"));
}

TEST(PipelineCheckpointTest, CheckpointSurvivesCacheAndNodeLoss) {
  Env env;
  PipelineConfig config;
  config.checkpoint_contributions_path = "/ckpt/u";
  cluster::FaultInjector faults;
  engine::EngineContext ctx(LocalOptions(), &env.dfs, &faults);
  auto pipeline = SkatPipeline::Open(ctx, env.paths, config);
  ASSERT_TRUE(pipeline.ok());
  const SetScores observed = pipeline.value().ComputeObserved();

  // Lose a node: cached U partitions on it are dropped AND its DFS role
  // dies; the checkpoint's surviving replicas carry recovery.
  ctx.FailNode(1);
  env.dfs.KillNode(1);
  const stats::MonteCarloWeights weights(config.seed, pipeline.value().n(), 1);
  const SetScores replicate =
      pipeline.value().ComputeMonteCarloReplicate(weights.Get(0));
  EXPECT_EQ(replicate.size(), observed.size());

  // Second context over the same DFS can reopen the checkpoint directly.
  engine::EngineContext ctx2(LocalOptions(), &env.dfs);
  auto reopened = engine::OpenCheckpoint<
      std::pair<std::uint32_t, std::vector<double>>>(ctx2, "/ckpt/u");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().Count(), 40u);  // one record per SNP
}

TEST(PipelineCheckpointTest, MissingDfsDegradesGracefully) {
  // In-memory pipeline with a checkpoint path but no DFS: warns and
  // proceeds with plain lineage.
  const simdata::SyntheticDataset dataset = simdata::Generate(StudyConfig());
  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.checkpoint_contributions_path = "/nowhere";
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  const ResamplingResult result = RunResampling(pipeline, {ResamplingMethod::kMonteCarlo, 5}).scores;
  EXPECT_EQ(result.observed.size(), 4u);
}

TEST(PipelineCheckpointTest, SnpRecordCodecRoundTrip) {
  const simdata::SnpRecord record{42, {0, 1, 2, 1, 0, 2}};
  BinaryWriter writer;
  engine::Codec<simdata::SnpRecord>::Encode(writer, record);
  BinaryReader reader(writer.bytes());
  EXPECT_EQ(engine::Codec<simdata::SnpRecord>::Decode(reader), record);
}

}  // namespace
}  // namespace ss::core
