#include "core/autotune.hpp"

#include <gtest/gtest.h>

#include "engine/dataset.hpp"

namespace ss::core {
namespace {

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

/// Runs a job with more tasks than the largest candidate's slot count so
/// scaling differences are visible in the replay.
void RunSampleJob(engine::EngineContext& ctx) {
  std::vector<int> data(2000);
  for (int i = 0; i < 2000; ++i) data[i] = i;
  engine::Parallelize(ctx, data, 500)
      .Map([](const int& x) {
        double acc = 0;
        for (int k = 0; k < 2000; ++k) acc += static_cast<double>(k ^ x);
        return acc;
      })
      .Collect();
}

TEST(AutotuneTest, StrongScalingCandidatesShape) {
  const auto candidates = StrongScalingCandidates({6, 12, 18});
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].num_nodes, 6);
  EXPECT_EQ(candidates[2].TotalSlots(), 18 * 8);
}

TEST(AutotuneTest, ContainerSweepMatchesTableVIII) {
  const auto candidates = ContainerSweepCandidates();
  ASSERT_EQ(candidates.size(), 3u);
  for (const auto& topology : candidates) {
    EXPECT_EQ(topology.num_nodes, 36);
  }
  EXPECT_EQ(candidates[0].cores_per_executor, 6);
  EXPECT_EQ(candidates[1].cores_per_executor, 3);
  EXPECT_EQ(candidates[2].cores_per_executor, 2);
}

TEST(AutotuneTest, AllPaperConfigsPlaceable) {
  for (const auto& topology : ContainerSweepCandidates()) {
    EXPECT_TRUE(IsPlaceable(topology)) << topology.ToString();
  }
  for (const auto& topology : StrongScalingCandidates({6, 12, 18, 36})) {
    EXPECT_TRUE(IsPlaceable(topology)) << topology.ToString();
  }
}

TEST(AutotuneTest, OversizedContainersNotPlaceable) {
  // 100 GiB containers cannot fit on 30 GiB nodes.
  EXPECT_FALSE(IsPlaceable(cluster::ContainerConfig(4, 4, 100.0, 1)));
}

TEST(AutotuneTest, TuneAcrossSortsByPredictedMakespan) {
  engine::EngineContext ctx(LocalOptions());
  RunSampleJob(ctx);
  const auto points = TuneAcross(ctx, StrongScalingCandidates({6, 12, 18}));
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i - 1].report.total_s, points[i].report.total_s);
  }
  // Strong scaling: more nodes first.
  EXPECT_EQ(points[0].topology.num_nodes, 18);
}

TEST(AutotuneTest, PickBestReturnsFastest) {
  engine::EngineContext ctx(LocalOptions());
  RunSampleJob(ctx);
  const auto best = PickBest(ctx, StrongScalingCandidates({6, 18}));
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best.value().topology.num_nodes, 18);
}

TEST(AutotuneTest, PickBestFailsWithNoPlaceableCandidate) {
  engine::EngineContext ctx(LocalOptions());
  RunSampleJob(ctx);
  const auto best =
      PickBest(ctx, {cluster::ContainerConfig(2, 2, 100.0, 1)});
  EXPECT_FALSE(best.ok());
}

TEST(AutotuneTest, ContainerSplitNearlyNegligible) {
  // Fig 7's observation: at a fixed node count, the container split
  // hardly matters (slots ≈ constant). Predicted makespans within 25%.
  engine::EngineContext ctx(LocalOptions());
  RunSampleJob(ctx);
  const auto points = TuneAcross(ctx, ContainerSweepCandidates());
  ASSERT_EQ(points.size(), 3u);
  const double fastest = points.front().report.total_s;
  const double slowest = points.back().report.total_s;
  EXPECT_LT(slowest / fastest, 1.25);
}

}  // namespace
}  // namespace ss::core
