// Distributed SKAT-O: cross-checks the pipeline's per-set (SKAT, burden)
// pairs against direct computation and exercises the resampling driver.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "stats/burden.hpp"
#include "stats/resampling.hpp"
#include "support/distributions.hpp"

namespace ss::core {
namespace {

simdata::SyntheticDataset SmallDataset(std::uint64_t seed = 61) {
  simdata::GeneratorConfig config;
  config.num_patients = 60;
  config.num_snps = 40;
  config.num_sets = 5;
  config.seed = seed;
  return simdata::Generate(config);
}

engine::EngineContext::Options LocalOptions() {
  engine::EngineContext::Options options;
  options.topology = cluster::EmrCluster(2);
  options.physical_threads = 4;
  return options;
}

/// Direct (SKAT, burden) pair for one set.
std::pair<double, double> DirectPair(const simdata::SyntheticDataset& dataset,
                                     const stats::SnpSet& set) {
  stats::ScoreEngine engine(stats::Phenotype::Cox(dataset.survival));
  double skat = 0.0;
  double weighted_sum = 0.0;
  for (std::uint32_t snp : set.snps) {
    const auto u = engine.Contributions(dataset.genotypes.by_snp[snp]);
    const double score = std::accumulate(u.begin(), u.end(), 0.0);
    const double w = dataset.weights[snp];
    skat += w * w * score * score;
    weighted_sum += w * score;
  }
  return {skat, weighted_sum * weighted_sum};
}

TEST(SkatOPipelineTest, ObservedPairMatchesDirect) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const auto pairs = pipeline.ComputeObservedSkatBurden();
  ASSERT_EQ(pairs.size(), dataset.sets.size());
  for (const stats::SnpSet& set : dataset.sets) {
    const auto [skat, burden] = DirectPair(dataset, set);
    EXPECT_NEAR(pairs.at(set.id).first, skat, 1e-9) << "set " << set.id;
    EXPECT_NEAR(pairs.at(set.id).second, burden, 1e-9) << "set " << set.id;
  }
}

TEST(SkatOPipelineTest, SkatComponentMatchesComputeObserved) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const SetScores skat_only = pipeline.ComputeObserved();
  const auto pairs = pipeline.ComputeObservedSkatBurden();
  for (const auto& [set_id, score] : skat_only) {
    EXPECT_NEAR(pairs.at(set_id).first, score, 1e-9);
  }
}

TEST(SkatOPipelineTest, ReplicatePairMatchesDirect) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  PipelineConfig config;
  config.seed = 91;
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, config);
  pipeline.ComputeObservedSkatBurden();

  const stats::MonteCarloWeights weights(config.seed, dataset.survival.n(), 1);
  const auto replicate =
      pipeline.ComputeMonteCarloSkatBurdenReplicate(weights.Get(0));

  stats::ScoreEngine engine(stats::Phenotype::Cox(dataset.survival));
  for (const stats::SnpSet& set : dataset.sets) {
    double skat = 0.0;
    double weighted_sum = 0.0;
    for (std::uint32_t snp : set.snps) {
      const auto u = engine.Contributions(dataset.genotypes.by_snp[snp]);
      const double score = stats::MonteCarloReplicateScore(u, weights.Get(0));
      const double w = dataset.weights[snp];
      skat += w * w * score * score;
      weighted_sum += w * score;
    }
    EXPECT_NEAR(replicate.at(set.id).first, skat, 1e-9);
    EXPECT_NEAR(replicate.at(set.id).second, weighted_sum * weighted_sum,
                1e-9);
  }
}

TEST(SkatOMethodTest, PValuesInRangeAndRanked) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const SkatOResult result = RunResampling(pipeline, {ResamplingMethod::kSkatO, 49}).skato;
  EXPECT_EQ(result.replicates, 49u);
  ASSERT_EQ(result.by_set.size(), dataset.sets.size());
  for (const auto& [set_id, per_set] : result.by_set) {
    EXPECT_GE(per_set.skat, 0.0);
    EXPECT_GE(per_set.burden, 0.0);
    EXPECT_GT(per_set.pvalue, 0.0);
    EXPECT_LE(per_set.pvalue, 1.0);
  }
  const auto ranked = result.RankedPValues();
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].second, ranked[i].second);
  }
}

TEST(SkatOMethodTest, DeterministicInSeed) {
  const simdata::SyntheticDataset dataset = SmallDataset();
  PipelineConfig config;
  config.seed = 13;
  engine::EngineContext ctx1(LocalOptions());
  engine::EngineContext ctx2(LocalOptions());
  SkatPipeline p1 = SkatPipeline::FromMemory(ctx1, dataset, config);
  SkatPipeline p2 = SkatPipeline::FromMemory(ctx2, dataset, config);
  const SkatOResult a = RunResampling(p1, {ResamplingMethod::kSkatO, 20}).skato;
  const SkatOResult b = RunResampling(p2, {ResamplingMethod::kSkatO, 20}).skato;
  for (const auto& [set_id, per_set] : a.by_set) {
    EXPECT_DOUBLE_EQ(per_set.pvalue, b.by_set.at(set_id).pvalue);
  }
}

TEST(SkatOMethodTest, DetectsAlignedBurdenSignal) {
  // Plant aligned positive effects in one set's SNPs by rebuilding the
  // survival times so carriers fail earlier on all member SNPs.
  simdata::SyntheticDataset dataset = SmallDataset(62);
  const stats::SnpSet& target = dataset.sets[2];
  const std::size_t causal = std::min<std::size_t>(3, target.snps.size());
  Rng rng(17);
  for (std::size_t i = 0; i < dataset.survival.n(); ++i) {
    double dosage = 0.0;
    for (std::size_t c = 0; c < causal; ++c) {
      dosage += dataset.genotypes.by_snp[target.snps[c]][i];
    }
    dataset.survival.time[i] =
        SampleExponential(rng, (1.0 / 12.0) * std::exp(0.9 * dosage));
    dataset.survival.event[i] = SampleBernoulli(rng, 0.85) ? 1 : 0;
  }
  engine::EngineContext ctx(LocalOptions());
  SkatPipeline pipeline = SkatPipeline::FromMemory(ctx, dataset, {});
  const SkatOResult result = RunResampling(pipeline, {ResamplingMethod::kSkatO, 99}).skato;
  EXPECT_EQ(result.RankedPValues().front().first, target.id);
}

}  // namespace
}  // namespace ss::core
