#!/usr/bin/env python3
"""Offline profile analysis for SparkScore run artifacts (stdlib only).

Works from the `timeline` section of a sparkscore-run-metrics-v2 document
(produced with `metrics=<file>`; `-` reads stdin, pairing with the
producers' `metrics=-` streaming mode).

Modes:
  ss_prof.py <metrics.json>
      Render the run profile: critical path, per-stage phase breakdown,
      stragglers, per-worker utilization. A human-readable second opinion
      on the in-process FormatProfileReport.

  ss_prof.py --check <metrics.json> <trace.json>
      Cross-check the in-process analyzer against the raw Chrome trace:
      re-derive each stage's critical task chain from the trace's task
      spans and reconcile the totals with the JSON's critical_path
      section, and assert the analyzer's invariants (critical path <=
      wall-clock; per-stage span sum == advertised total). Exits 1 on
      any discrepancy beyond tolerance. Use artifacts from a single run
      command (the tracer accumulates across selftest sub-runs).

  ss_prof.py --compare <before.json> <after.json> [--threshold T]
      Perf-regression gate: exits 1 when `after`'s critical path exceeds
      `before`'s by more than T (fractional, default 0.10 = 10%), with a
      per-stage breakdown of where the time went. Exits 0 otherwise.

Exit codes: 0 ok, 1 check/regression failure, 2 usage or unreadable input.
Validated structurally by tools/check_trace.py; exercised by the
`profile_smoke` ctest. See docs/OBSERVABILITY.md.
"""
import json
import sys

# Keep in sync with TaskPhase in src/engine/task.hpp.
PHASES = (
    "queue_wait", "fetch", "decode", "compute", "spill_write", "handoff",
    "prefetch", "io_wait",
)

# Reconciliation tolerances between the in-process analyzer (steady
# clock at nanosecond resolution) and the trace-derived recomputation
# (microsecond resolution, events recorded at slightly different
# instants than the timeline's timestamps).
ABS_TOL_S = 0.010
REL_TOL = 0.25


def die(message, code=2):
    print(f"ss_prof: {message}", file=sys.stderr)
    sys.exit(code)


def load_json(path):
    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        die(f"cannot read {path}: {error}")
    start = text.find("{")
    if start < 0:
        die(f"{path} carries no JSON document")
    try:
        doc, _ = json.JSONDecoder().raw_decode(text[start:])
        return doc
    except json.JSONDecodeError as error:
        die(f"{path} is not valid JSON: {error}")


def load_timeline(path):
    doc = load_json(path)
    schema = doc.get("schema")
    if schema != "sparkscore-run-metrics-v2":
        die(f"{path}: schema {schema!r} (need sparkscore-run-metrics-v2)")
    timeline = doc.get("timeline")
    if timeline is None:
        die(f"{path}: no timeline section")
    if not timeline.get("collected"):
        die(f"{path}: timeline not collected — rerun with profile=1", 1)
    return doc, timeline


def fmt_seconds(value):
    return f"{value:.4f}"


def report(path):
    _, timeline = load_timeline(path)
    wall = timeline["wall_seconds"]
    critical = timeline["critical_path"]
    share = 100.0 * critical["seconds"] / wall if wall > 0 else 0.0
    print(
        f"run: wall {fmt_seconds(wall)}s, critical path "
        f"{fmt_seconds(critical['seconds'])}s ({share:.1f}%) across "
        f"{len(critical['spans'])} stages"
    )
    print("\ncritical path (stage-binding tasks):")
    for span in critical["spans"]:
        pct = (
            100.0 * span["seconds"] / critical["seconds"]
            if critical["seconds"] > 0
            else 0.0
        )
        print(
            f"  stage {span['stage']:>3}  partition {span['partition']:>3}  "
            f"{fmt_seconds(span['seconds'])}s  {pct:5.1f}%"
        )
    print("\nper-stage phase breakdown (seconds):")
    header = "  id  tasks " + "".join(f"{p:>12}" for p in PHASES)
    print(header + "  stragglers  label")
    for stage in timeline["stages"]:
        cells = "".join(f"{value:12.4f}" for value in stage["phase_seconds"])
        stragglers = stage["stragglers"]
        marker = f"{len(stragglers)}" + (
            f" (p{stragglers[0]}...)" if stragglers else ""
        )
        print(
            f"  {stage['id']:>2}  {stage['tasks']:>5} {cells}  "
            f"{marker:>10}  {stage['label']}"
        )
    print("\nworkers:")
    for worker in timeline["workers"]:
        print(
            f"  w{worker['worker']:<3} {worker['tasks']:>5} tasks  "
            f"busy {fmt_seconds(worker['busy_seconds'])}s  "
            f"util {100.0 * worker['utilization']:5.1f}%  "
            f"idle {worker['idle']['gaps']} gaps "
            f"{fmt_seconds(worker['idle']['total_seconds'])}s "
            f"(max {fmt_seconds(worker['idle']['max_seconds'])}s)"
        )
    return 0


def stages_from_trace(events):
    """Re-derives per-stage task timing from raw trace events.

    Returns {stage_id: {"begin_us": ts, "task_ends": [ts...]}} keeping the
    LAST instance of each stage id (the tracer is process-global; earlier
    sub-runs of the same binary reuse ids from 1)."""
    stages = {}
    # tid -> stack of (category, name, begin_event) mirroring the B/E
    # nesting check_trace.py already enforces.
    open_spans = {}
    for event in events:
        phase = event.get("ph")
        category = event.get("cat")
        if phase == "B":
            open_spans.setdefault(event["tid"], []).append(event)
            if category == "stage":
                sid = int(event["args"]["stage"])
                stages[sid] = {"begin_us": event["ts"], "task_ends": []}
        elif phase == "E":
            stack = open_spans.get(event["tid"])
            if not stack:
                die(f"unbalanced trace: End with no Begin on tid {event['tid']}", 1)
            begun = stack.pop()
            if category == "task":
                outcome = event.get("args", {}).get("outcome")
                if outcome != "ok":
                    continue  # failed attempt; the retry carries the timing
                sid = int(begun["args"]["stage"])
                if sid in stages:
                    stages[sid]["task_ends"].append(event["ts"])
    return stages


def check(metrics_path, trace_path):
    doc, timeline = load_timeline(metrics_path)
    trace = load_json(trace_path)
    events = trace.get("traceEvents")
    if not events:
        die(f"{trace_path}: no traceEvents")

    wall = timeline["wall_seconds"]
    critical = timeline["critical_path"]
    failures = []

    # Invariant 1: the advertised critical path never exceeds wall-clock.
    if critical["seconds"] > wall * (1 + 1e-6) + 1e-6:
        failures.append(
            f"critical path {critical['seconds']}s exceeds wall {wall}s"
        )
    # Invariant 2: the span list sums to the advertised total.
    span_sum = sum(span["seconds"] for span in critical["spans"])
    if abs(span_sum - critical["seconds"]) > 1e-6 + 1e-3 * abs(span_sum):
        failures.append(
            f"critical spans sum to {span_sum}s, section says "
            f"{critical['seconds']}s"
        )

    # Cross-check: recompute each stage's critical contribution from the
    # raw trace (latest stage-span begin -> latest successful task end).
    trace_stages = stages_from_trace(events)
    trace_total = 0.0
    for span in critical["spans"]:
        sid = span["stage"]
        derived = trace_stages.get(sid)
        if derived is None or not derived["task_ends"]:
            failures.append(f"stage {sid}: no task spans in the trace")
            continue
        derived_s = (max(derived["task_ends"]) - derived["begin_us"]) / 1e6
        trace_total += derived_s
        tolerance = ABS_TOL_S + REL_TOL * max(abs(derived_s), abs(span["seconds"]))
        if abs(derived_s - span["seconds"]) > tolerance:
            failures.append(
                f"stage {sid}: trace-derived critical {derived_s:.6f}s vs "
                f"analyzer {span['seconds']:.6f}s (tolerance {tolerance:.6f}s)"
            )
    tolerance = ABS_TOL_S + REL_TOL * max(trace_total, critical["seconds"])
    if abs(trace_total - critical["seconds"]) > tolerance:
        failures.append(
            f"critical-path total from trace {trace_total:.6f}s vs analyzer "
            f"{critical['seconds']:.6f}s (tolerance {tolerance:.6f}s)"
        )

    if failures:
        for failure in failures:
            print(f"ss_prof: CHECK FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"ss_prof: OK: critical path {critical['seconds']:.4f}s <= wall "
        f"{wall:.4f}s; trace recomputation {trace_total:.4f}s agrees "
        f"across {len(critical['spans'])} stages"
    )
    return 0


def compare(before_path, after_path, threshold):
    _, before = load_timeline(before_path)
    _, after = load_timeline(after_path)
    cp_before = before["critical_path"]["seconds"]
    cp_after = after["critical_path"]["seconds"]
    delta = cp_after - cp_before
    pct = 100.0 * delta / cp_before if cp_before > 0 else float("inf")
    print(
        f"critical path: {cp_before:.4f}s -> {cp_after:.4f}s "
        f"({'+' if delta >= 0 else ''}{pct:.1f}%)"
    )
    # Stage-level attribution, matched by label (ids are stable within a
    # binary but labels survive stage-count changes better).
    before_by_label = {}
    for span, stage in zip(
        before["critical_path"]["spans"], before["stages"]
    ):
        before_by_label.setdefault(stage["label"], span["seconds"])
    for span, stage in zip(after["critical_path"]["spans"], after["stages"]):
        old = before_by_label.get(stage["label"])
        if old is None:
            print(f"  {stage['label']}: NEW {span['seconds']:.4f}s")
        else:
            stage_delta = span["seconds"] - old
            print(
                f"  {stage['label']}: {old:.4f}s -> {span['seconds']:.4f}s "
                f"({'+' if stage_delta >= 0 else ''}{stage_delta:.4f}s)"
            )
    if cp_after > cp_before * (1 + threshold):
        print(
            f"ss_prof: REGRESSION: critical path grew {pct:.1f}% "
            f"(threshold {100 * threshold:.0f}%)",
            file=sys.stderr,
        )
        return 1
    print(f"ss_prof: OK: within {100 * threshold:.0f}% threshold")
    return 0


def main(argv):
    args = argv[1:]
    threshold = 0.10
    if "--threshold" in args:
        at = args.index("--threshold")
        try:
            threshold = float(args[at + 1])
        except (IndexError, ValueError):
            die("--threshold needs a number")
        del args[at:at + 2]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    if args[0] == "--check":
        if len(args) != 3:
            die("--check needs <metrics.json> <trace.json>")
        return check(args[1], args[2])
    if args[0] == "--compare":
        if len(args) != 3:
            die("--compare needs <before.json> <after.json>")
        return compare(args[1], args[2], threshold)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    return report(args[0])


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:
        sys.exit(0)  # e.g. report piped into `head`
