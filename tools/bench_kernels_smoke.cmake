# Driver for the bench_kernels_smoke ctest: runs the kernel microbench at
# reduced scale, writing a BENCH_kernels.json datapoint, then gates on it
# with check_kernel_speedup.py (bitwise cross-level identity and the ~4x
# packing ratio always; the >= 1.5x AVX2-vs-scalar MAC speedup only on an
# optimized, unsanitized, AVX2-capable host).
# Invoked as:
#   cmake -DBENCH=<bench_kernels bin> -DPYTHON=<python3>
#         -DCHECK=<check_kernel_speedup.py> -DOUT_DIR=<dir>
#         -P bench_kernels_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(datapoint "${OUT_DIR}/BENCH_kernels.json")

execute_process(
  COMMAND "${BENCH}" "patients=2048" "count=128" "iters=30" "snps=256"
          "out=${datapoint}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_kernels failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${datapoint}"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "kernel speedup/packing gate failed (exit ${check_result})")
endif()
