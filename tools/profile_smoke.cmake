# Driver for the profile_smoke ctest: exercises the task-timeline profiler
# end to end.
#   1. A baseline `skat` run with trace=/metrics= artifacts; both are
#      validated by check_trace.py (v2 schema, timeline invariants).
#   2. ss_prof.py --check reconciles the analyzer's critical path against
#      a recomputation from the raw trace and the measured wall-clock.
#   3. A deliberately heavier run (4x replicates, more SNPs) must trip
#      ss_prof.py --compare's regression gate (nonzero exit), while
#      comparing the baseline against itself must pass.
#   4. profile=0 must still produce a valid v2 document (timeline section
#      present with collected:false).
# Invoked as:
#   cmake -DSPARKSCORE=<bin> -DPYTHON=<python3> -DCHECK=<check_trace.py>
#         -DPROF=<ss_prof.py> -DOUT_DIR=<dir> -P profile_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_a "${OUT_DIR}/profile_smoke.a.trace.json")
set(metrics_a "${OUT_DIR}/profile_smoke.a.metrics.json")
set(metrics_b "${OUT_DIR}/profile_smoke.b.metrics.json")
set(metrics_off "${OUT_DIR}/profile_smoke.off.metrics.json")

# Baseline run. A single command (not selftest) so the trace holds exactly
# one instance of each stage id for ss_prof.py's trace recomputation.
execute_process(
  COMMAND "${SPARKSCORE}" skat patients=60 snps=400 sets=16 reps=25
          "trace=${trace_a}" "metrics=${metrics_a}"
  RESULT_VARIABLE run_result OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "baseline skat run failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${trace_a}" "${metrics_a}"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the artifacts (exit ${check_result})")
endif()

# Analyzer vs raw trace: critical-path totals must reconcile with each
# other and with the measured wall-clock.
execute_process(
  COMMAND "${PYTHON}" "${PROF}" --check "${metrics_a}" "${trace_a}"
  RESULT_VARIABLE prof_check_result
)
if(NOT prof_check_result EQUAL 0)
  message(FATAL_ERROR "ss_prof.py --check failed (exit ${prof_check_result})")
endif()

# Heavier run: 4x the work on the compute-bound stage. The regression gate
# must catch it...
execute_process(
  COMMAND "${SPARKSCORE}" skat patients=120 snps=2000 sets=64 reps=100
          "metrics=${metrics_b}"
  RESULT_VARIABLE run_result OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "heavy skat run failed (exit ${run_result})")
endif()
execute_process(
  COMMAND "${PYTHON}" "${PROF}" --compare "${metrics_a}" "${metrics_b}"
          --threshold 0.5
  RESULT_VARIABLE compare_result ERROR_QUIET OUTPUT_QUIET
)
if(compare_result EQUAL 0)
  message(FATAL_ERROR
    "ss_prof.py --compare did not flag a 4x-heavier run as a regression")
endif()
# ...while a run compared against itself must not (the generous threshold
# guards only against gross inversions, not timing noise).
execute_process(
  COMMAND "${PYTHON}" "${PROF}" --compare "${metrics_a}" "${metrics_a}"
  RESULT_VARIABLE self_result OUTPUT_QUIET
)
if(NOT self_result EQUAL 0)
  message(FATAL_ERROR
    "ss_prof.py --compare flagged a run against itself (exit ${self_result})")
endif()

# profile=0 ablation: the metrics document must still be valid v2, with
# the timeline marked as not collected.
execute_process(
  COMMAND "${SPARKSCORE}" skat patients=60 snps=400 sets=16 reps=25
          profile=0 "trace=${trace_a}" "metrics=${metrics_off}"
  RESULT_VARIABLE run_result OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "profile=0 skat run failed (exit ${run_result})")
endif()
execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${trace_a}" "${metrics_off}"
  RESULT_VARIABLE off_result
)
if(NOT off_result EQUAL 0)
  message(FATAL_ERROR
    "check_trace.py rejected the profile=0 artifacts (exit ${off_result})")
endif()
message(STATUS "profile_smoke OK")
