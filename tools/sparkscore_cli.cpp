// sparkscore — command-line driver for the whole system.
//
// Runs a complete study (generate -> stage in the mini-DFS -> distributed
// analysis -> report) in one process, since the simulated cluster and DFS
// are in-memory. Subcommands:
//
//   sparkscore skat     [key=value...]   SNP-set analysis (Algorithms 1+3/2)
//   sparkscore skato    [key=value...]   SKAT-O combination
//   sparkscore scan     [key=value...]   variant-by-variant scan
//   sparkscore selftest                  tiny end-to-end sanity run
//
// Common keys: patients, snps, sets, reps (B), seed, nodes, partitions,
// method=mc|perm, model=cox|gaussian|binomial (scan/skat in-memory only),
// top (rows to print), stages=1 (print the per-stage run report),
// export=<dfs path> (persist the result inside the run's DFS and echo it).
//
// Observability keys (see docs/OBSERVABILITY.md):
//   trace=<file>     enable the engine tracer and write a Chrome
//                    trace_event JSON (load in chrome://tracing or
//                    https://ui.perfetto.dev); trace=- streams the
//                    JSON to stderr for piping
//   metrics=<file>   write the machine-readable run summary
//                    (schema "sparkscore-run-metrics-v2"); metrics=-
//                    streams it to stdout for piping into
//                    tools/ss_prof.py or tools/check_trace.py
//   profile=0|1      task-timeline collection (default 1; profile=0
//                    ablates it — results are bitwise identical)
//   profile_report=1 print the critical-path/straggler/utilization
//                    report (FormatProfileReport) after the run
//   straggler_mad_k=<k>
//                    straggler threshold: flag tasks slower than
//                    median + k*MAD of their stage (default 3)
//   loglevel=debug|info|warn|error
//                    stderr log verbosity (default error; the
//                    SS_LOG_LEVEL environment variable also works)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/record_traits.hpp"
#include "core/sparkscore.hpp"
#include "simdata/store_codec.hpp"
#include "engine/profile.hpp"
#include "engine/trace.hpp"
#include "stats/kernels/kernels.hpp"
#include "support/log.hpp"
#include "support/option_map.hpp"
#include "support/stopwatch.hpp"

namespace {

using ss::Result;
using ss::Status;

/// Shared key=value option parsing (same class the benches use), with
/// typed getters and unknown-key diagnostics printed after each command.
using CliArgs = ss::support::OptionMap;

struct Study {
  std::unique_ptr<ss::dfs::MiniDfs> dfs;
  std::unique_ptr<ss::engine::EngineContext> ctx;
  std::unique_ptr<ss::core::SkatPipeline> pipeline;
  ss::simdata::SyntheticDataset dataset;
};

Study OpenStudy(const CliArgs& args, bool allow_store = true) {
  Study study;
  ss::simdata::GeneratorConfig generator;
  generator.num_patients =
      static_cast<std::uint32_t>(args.GetU64("patients", 300));
  generator.num_snps = static_cast<std::uint32_t>(args.GetU64("snps", 2000));
  generator.num_sets = static_cast<std::uint32_t>(args.GetU64("sets", 100));
  generator.seed = args.GetU64("seed", 2016);
  generator.ld_block_size =
      static_cast<std::uint32_t>(args.GetU64("ld_block", 1));

  const int nodes = static_cast<int>(args.GetU64("nodes", 6));
  study.dfs = std::make_unique<ss::dfs::MiniDfs>(ss::dfs::DfsOptions{
      .num_nodes = std::max(2, nodes),
      .replication = 2,
      .block_lines = std::max<std::uint32_t>(
          1, generator.num_snps /
                 static_cast<std::uint32_t>(args.GetU64("partitions", 8)))});

  ss::engine::EngineContext::Options options;
  options.topology = ss::cluster::EmrCluster(nodes);
  options.seed = generator.seed;
  // Constrained-memory runs: cache_budget= caps the partition cache
  // (bytes, 0 = unlimited; evicted partitions spill to the second tier)
  // and spill_dir= redirects spill frames to real files.
  options.cache_capacity_bytes = args.GetU64("cache_budget", 0);
  options.spill_dir = args.GetStr("spill_dir", "");
  options.straggler_mad_k = args.GetDouble("straggler_mad_k", 3.0);
  // Async executor (registry group "exec"): prefetch=0 ablates the I/O
  // lane; all three knobs are bitwise-irrelevant to the results.
  options.exec.prefetch_depth = static_cast<int>(args.GetU64("prefetch", 1));
  options.exec.io_threads = static_cast<int>(
      std::max<std::uint64_t>(1, args.GetU64("io_threads", 1)));
  options.exec.spill_async = args.GetBool("spill_async", false);
  study.ctx = std::make_unique<ss::engine::EngineContext>(options,
                                                          study.dfs.get());

  ss::core::PipelineConfig config;
  config.seed = generator.seed;
  config.num_partitions =
      static_cast<std::uint32_t>(args.GetU64("partitions", 8));
  config.num_reducers = static_cast<std::uint32_t>(args.GetU64("reducers", 8));
  // Monte Carlo replicates per engine pass; results are bitwise invariant
  // to this knob (batch=1 recovers per-replicate scheduling).
  config.resampling_batch_size = std::max<std::uint64_t>(
      1, args.GetU64("batch", config.resampling_batch_size));
  config.cache_budget_bytes = args.GetU64("cache_budget", 0);
  // pack=0 ablates the 2-bit packed genotype storage (results are
  // bitwise identical either way; only cache/spill bytes change).
  config.pack_genotypes = args.GetU64("pack", 1) != 0;

  const std::string store_path = args.GetStr("store", "");
  if (!store_path.empty()) {
    // Out-of-core path: open (or stage once, then open) the mmap'd
    // genotype store instead of generating the dense matrix + text files.
    // The generator keys pin the expected fingerprint, so a store file
    // holding a DIFFERENT cohort is refused rather than silently reused;
    // corruption likewise refuses instead of re-ingesting.
    if (!allow_store) {
      throw ss::StatusError(
          ss::Status(ss::StatusCode::kInvalidArgument,
                     "store= is supported by skat/skato only"));
    }
    const std::uint64_t fingerprint = ss::simdata::StoreFingerprint(generator);
    auto pipeline = ss::core::SkatPipeline::OpenFromStore(
        *study.ctx, store_path, config, fingerprint);
    if (!pipeline.ok() &&
        pipeline.status().code() == ss::StatusCode::kNotFound) {
      auto staged = ss::simdata::GenerateToStore(generator, store_path,
                                                 config.num_partitions);
      if (!staged.ok()) throw ss::StatusError(staged.status());
      std::printf("store: staged %u partitions (%llu payload bytes) at %s\n",
                  staged.value().num_partitions,
                  static_cast<unsigned long long>(staged.value().payload_bytes),
                  store_path.c_str());
      pipeline = ss::core::SkatPipeline::OpenFromStore(*study.ctx, store_path,
                                                       config, fingerprint);
    }
    if (!pipeline.ok()) throw ss::StatusError(pipeline.status());
    study.pipeline =
        std::make_unique<ss::core::SkatPipeline>(std::move(pipeline).value());
    std::printf("study: %u patients x %u SNPs x %u sets on %s (store %s)\n",
                generator.num_patients, generator.num_snps, generator.num_sets,
                options.topology.ToString().c_str(), store_path.c_str());
    return study;
  }

  study.dataset = ss::simdata::Generate(generator);
  const auto paths = ss::simdata::StudyPaths::Under("/study");
  ss::Status staged = ss::simdata::WriteStudy(*study.dfs, paths, study.dataset);
  if (!staged.ok()) throw ss::StatusError(staged);

  auto pipeline = ss::core::SkatPipeline::Open(*study.ctx, paths, config);
  if (!pipeline.ok()) throw ss::StatusError(pipeline.status());
  study.pipeline =
      std::make_unique<ss::core::SkatPipeline>(std::move(pipeline).value());

  std::printf("study: %u patients x %u SNPs x %u sets on %s\n",
              generator.num_patients, generator.num_snps, generator.num_sets,
              options.topology.ToString().c_str());
  return study;
}

void MaybePrintStages(const CliArgs& args, ss::engine::EngineContext& ctx) {
  if (args.GetU64("stages", 0) != 0) {
    std::fputs(ss::engine::FormatRunReport(ctx.metrics().stages(),
                                           ctx.cache().stats(),
                                           ctx.metrics().broadcast_bytes())
                   .c_str(),
               stdout);
  }
  if (args.GetU64("profile_report", 0) != 0) {
    std::fputs(
        ss::engine::FormatProfileReport(ss::engine::BuildRunProfile(
                                            ctx.metrics().stages(),
                                            ctx.options().straggler_mad_k))
            .c_str(),
        stdout);
  }
}

/// Writes the trace= and metrics= artifacts, if requested. A path of "-"
/// streams instead of writing a file: metrics to stdout, trace to stderr
/// (so both can be piped from one run without interleaving). The tracer
/// is process-global and accumulates across sub-runs (selftest), so each
/// call rewrites the file with the cumulative trace.
void WriteRunArtifacts(const CliArgs& args, ss::engine::EngineContext& ctx) {
  const std::string trace_path = args.GetStr("trace", "");
  if (trace_path == "-") {
    std::fputs(ss::engine::Tracer::Global().ChromeTraceJson().c_str(), stderr);
  } else if (!trace_path.empty()) {
    if (ss::engine::Tracer::Global().WriteChromeTraceJson(trace_path)) {
      std::printf("trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   trace_path.c_str());
    }
  }
  const std::string metrics_path = args.GetStr("metrics", "");
  if (metrics_path == "-") {
    std::fputs(ctx.RunMetricsJson().c_str(), stdout);
  } else if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    out << ctx.RunMetricsJson();
    if (out.good()) {
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
}

int RunSkat(const CliArgs& args, bool skato) {
  Study study = OpenStudy(args);
  ss::core::ResamplingRequest request;
  request.replicates = args.GetU64("reps", skato ? 99 : 499);
  const std::uint64_t reps = request.replicates;
  ss::Stopwatch stopwatch;
  if (skato) {
    request.method = ss::core::ResamplingMethod::kSkatO;
    const ss::core::SkatOResult result =
        ss::core::RunResampling(*study.pipeline, request).skato;
    std::printf("SKAT-O with B=%llu finished in %.2fs\n",
                static_cast<unsigned long long>(reps),
                stopwatch.ElapsedSeconds());
    const auto ranked = result.RankedPValues();
    const std::size_t top = std::min<std::size_t>(args.GetU64("top", 10),
                                                  ranked.size());
    for (std::size_t r = 0; r < top; ++r) {
      const auto& per_set = result.by_set.at(ranked[r].first);
      std::printf("  #%zu set %u: SKAT=%.2f burden=%.2f p=%.4f\n", r + 1,
                  ranked[r].first, per_set.skat, per_set.burden,
                  ranked[r].second);
    }
  } else {
    const std::string method = args.GetStr("method", "mc");
    request.method = method == "perm" ? ss::core::ResamplingMethod::kPermutation
                                      : ss::core::ResamplingMethod::kMonteCarlo;
    const std::string pmethod = args.GetStr("pmethod", "resampling");
    const ss::Result<ss::core::PValueMethod> parsed =
        ss::core::ParsePValueMethod(pmethod);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    request.pvalue_method = parsed.value();
    request.refine_threshold = args.GetDouble("refine_threshold", 0.01);
    request.early_stop = args.GetU64("early_stop", 0);
    const ss::core::ResamplingResult result =
        ss::core::RunResampling(*study.pipeline, request).scores;
    std::printf("%s with B=%llu finished in %.2fs\n",
                method == "perm" ? "Permutation" : "Monte Carlo",
                static_cast<unsigned long long>(reps),
                stopwatch.ElapsedSeconds());
    if (!result.inference.empty()) {
      std::uint64_t refined = 0;
      std::uint64_t stopped = 0;
      std::uint64_t used = 0;
      for (const auto& [set_id, info] : result.inference) {
        refined += info.refined ? 1 : 0;
        stopped += info.early_stopped ? 1 : 0;
        used += info.replicates_used;
      }
      std::printf(
          "  pvalue engine: %s, %llu/%zu sets refined, %llu early-stopped, "
          "%llu replicates consumed (of %llu scheduled ceiling)\n",
          pmethod.c_str(), static_cast<unsigned long long>(refined),
          result.inference.size(), static_cast<unsigned long long>(stopped),
          static_cast<unsigned long long>(used),
          static_cast<unsigned long long>(reps * result.inference.size()));
    }
    std::fputs(ss::core::FormatTopHits(
                   result, static_cast<std::size_t>(args.GetU64("top", 10)))
                   .c_str(),
               stdout);
    const std::string export_path = args.GetStr("export", "");
    if (!export_path.empty()) {
      const Status written =
          ss::core::WriteResultToDfs(result, *study.dfs, export_path);
      std::printf("result %s to DFS path %s\n",
                  written.ok() ? "exported" : "EXPORT FAILED",
                  export_path.c_str());
      if (written.ok()) {
        const std::vector<std::string> lines =
            study.dfs->ReadTextFile(export_path).value();
        for (std::size_t i = 0; i < lines.size() && i < 5; ++i) {
          std::printf("    %s\n", lines[i].c_str());
        }
      }
    }
  }
  MaybePrintStages(args, *study.ctx);
  WriteRunArtifacts(args, *study.ctx);
  return 0;
}

int RunScan(const CliArgs& args) {
  Study study = OpenStudy(args, /*allow_store=*/false);
  ss::core::VariantScanConfig config;
  config.replicates = args.GetU64("reps", 199);
  config.seed = args.GetU64("seed", 2016);
  std::vector<ss::simdata::SnpRecord> records;
  for (std::uint32_t j = 0; j < study.dataset.genotypes.num_snps(); ++j) {
    records.push_back({j, study.dataset.genotypes.by_snp[j]});
  }
  ss::Stopwatch stopwatch;
  const ss::core::VariantScanResult result = ss::core::RunVariantScan(
      *study.ctx,
      ss::engine::Parallelize(
          *study.ctx, records,
          static_cast<std::uint32_t>(args.GetU64("partitions", 8))),
      ss::stats::Phenotype::Cox(study.dataset.survival), config);
  std::printf("variant scan with B=%llu finished in %.2fs\n",
              static_cast<unsigned long long>(config.replicates),
              stopwatch.ElapsedSeconds());
  const auto ranked = result.RankedByAsymptoticP();
  const std::size_t top =
      std::min<std::size_t>(args.GetU64("top", 10), ranked.size());
  std::printf("  %-8s %-12s %-12s %-12s %-12s\n", "snp", "score",
              "asym p", "emp p", "maxT p");
  for (std::size_t r = 0; r < top; ++r) {
    const auto& s = result.by_snp.at(ranked[r]);
    std::printf("  %-8u %-12.3f %-12.3g %-12.4f %-12.4f\n", ranked[r],
                s.score, s.asymptotic_p, result.EmpiricalP(ranked[r]),
                result.MaxTAdjustedP(ranked[r]));
  }
  MaybePrintStages(args, *study.ctx);
  WriteRunArtifacts(args, *study.ctx);
  return 0;
}

int RunSelfTest(const CliArgs& outer) {
  CliArgs args;
  // Observability keys pass through so `selftest trace=...` exercises the
  // full artifact path (used by the trace_smoke ctest).
  for (const char* key :
       {"trace", "metrics", "stages", "profile", "profile_report",
        "straggler_mad_k"}) {
    const std::string value = outer.GetStr(key, "");
    if (!value.empty()) args.Set(key, value);
  }
  args.Set("patients", "60");
  args.Set("snps", "80");
  args.Set("sets", "8");
  args.Set("reps", "19");
  args.Set("top", "3");
  std::printf("== selftest: skat ==\n");
  if (RunSkat(args, false) != 0) return 1;
  std::printf("== selftest: skato ==\n");
  if (RunSkat(args, true) != 0) return 1;
  std::printf("== selftest: scan ==\n");
  if (RunScan(args) != 0) return 1;
  std::printf("selftest OK\n");
  return 0;
}

void PrintUsage() {
  // The key list is GENERATED from the shared registry (the same source
  // the benches and unknown-key suggestions use), so a key added there
  // appears here without touching this file.
  std::fputs("usage: sparkscore <skat|skato|scan|selftest> [key=value ...]\n",
             stderr);
  std::fputs(ss::support::FormatKeyHelp({"workload", "engine", "exec",
                                         "analysis", "observability"})
                 .c_str(),
             stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  CliArgs args(argc, argv, /*begin=*/2);
  // The CLI accepts every registry key in these groups; unknown-key
  // suggestions draw from the same vocabulary PrintUsage prints.
  args.DeclareKeys({"workload", "engine", "exec", "analysis",
                    "observability"});
  const std::string loglevel = args.GetStr("loglevel", "");
  if (!loglevel.empty()) {
    if (std::optional<ss::LogLevel> level = ss::ParseLogLevel(loglevel)) {
      ss::SetLogLevel(*level);
    } else {
      std::fprintf(stderr, "error: unrecognized loglevel '%s'\n",
                   loglevel.c_str());
      return 2;
    }
  } else if (std::getenv("SS_LOG_LEVEL") == nullptr) {
    // Keep CLI output clean by default, but let SS_LOG_LEVEL override.
    ss::SetLogLevel(ss::LogLevel::kError);
  }
  if (!args.GetStr("trace", "").empty()) {
    ss::engine::Tracer::Global().Enable();
  }
  ss::engine::SetProfilingEnabled(args.GetBool("profile", true));
  // kernel=scalar|sse2|avx2 forces the SIMD dispatch level for the whole
  // process (same as the SS_KERNEL environment variable; requests above
  // what the CPU supports clamp down with a warning).
  const std::string kernel = args.GetStr("kernel", "");
  if (!kernel.empty()) {
    Result<ss::stats::kernels::DispatchLevel> level =
        ss::stats::kernels::ParseDispatchLevel(kernel);
    if (!level.ok()) {
      std::fprintf(stderr, "error: %s\n", level.status().ToString().c_str());
      return 2;
    }
    ss::stats::kernels::SetDispatchLevel(level.value());
  }
  try {
    const std::string command = argv[1];
    int code = -1;
    if (command == "skat") {
      code = RunSkat(args, false);
    } else if (command == "skato") {
      code = RunSkat(args, true);
    } else if (command == "scan") {
      code = RunScan(args);
    } else if (command == "selftest") {
      code = RunSelfTest(args);
    }
    if (code >= 0) {
      args.WarnUnknownKeys("sparkscore");
      return code;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  PrintUsage();
  return 2;
}
