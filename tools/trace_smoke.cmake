# Driver for the trace_smoke ctest: runs the CLI selftest with the
# trace=/metrics= keys, then validates both artifacts with check_trace.py.
# Invoked as:
#   cmake -DSPARKSCORE=<bin> -DPYTHON=<python3> -DCHECK=<check_trace.py>
#         -DOUT_DIR=<dir> -P trace_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/trace_smoke.trace.json")
set(metrics_file "${OUT_DIR}/trace_smoke.metrics.json")

execute_process(
  COMMAND "${SPARKSCORE}" selftest "trace=${trace_file}"
          "metrics=${metrics_file}"
  RESULT_VARIABLE run_result
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "sparkscore selftest failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${trace_file}" "${metrics_file}"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "check_trace.py rejected the artifacts (exit ${check_result})")
endif()
