// Deliberate lock-order inversion, driven by the deadlock_smoke ctest.
//
//   deadlock_abba abba   take two RankedMutexes in both orders on one
//                        thread. With the analyzer compiled in (Debug /
//                        sanitizer builds) the second order completes a
//                        cycle in the acquisition graph and the process
//                        must abort printing both chains — even though
//                        this schedule never actually deadlocks. With
//                        the analyzer compiled out (release) the same
//                        sequence is harmless and the run exits 0.
//   deadlock_abba clean  rank-ordered nesting only; must exit 0 in every
//                        configuration.
//
// Exit codes: 0 = sequence completed, 2 = usage error. The smoke script
// asserts the abba mode dies by signal when (and only when) the binary
// reports the analyzer is active.
#include <cstdio>
#include <cstring>

#include "support/lock_ranks.hpp"
#include "support/ranked_mutex.hpp"

namespace {

constexpr ss::support::LockRank kOuter{"abba.outer", 2000};
constexpr ss::support::LockRank kInner{"abba.inner", 2010};

int RunAbba() {
  ss::support::RankedMutex outer(kOuter);
  ss::support::RankedMutex inner(kInner);
  {
    ss::support::MutexLock first(outer);
    ss::support::MutexLock second(inner);  // records outer -> inner
  }
  {
    ss::support::MutexLock first(inner);
    // Completes the cycle: the analyzer aborts HERE, before blocking.
    ss::support::MutexLock second(outer);
  }
  std::puts("abba sequence completed without detection");
  return 0;
}

int RunClean() {
  ss::support::RankedMutex outer(kOuter);
  ss::support::RankedMutex inner(kInner);
  for (int i = 0; i < 3; ++i) {
    ss::support::MutexLock first(outer);
    ss::support::MutexLock second(inner);
  }
  std::puts("clean sequence completed");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "active") == 0) {
    // "1" when the analyzer is compiled in AND runtime-enabled.
    std::printf("%d\n", ss::support::lock_order::RuntimeEnabled() ? 1 : 0);
    return 0;
  }
  if (argc == 2 && std::strcmp(argv[1], "abba") == 0) return RunAbba();
  if (argc == 2 && std::strcmp(argv[1], "clean") == 0) return RunClean();
  std::fprintf(stderr, "usage: %s {abba|clean|active}\n", argv[0]);
  return 2;
}
