#!/usr/bin/env python3
"""Gate on a bench_scale datapoint (stdlib only).

bench_scale streams a packed-genotype store through budget-constrained
Monte Carlo runs; this checker holds it to the out-of-core contract:

  * bitwise determinism — every budget produced the same
    resampling.result_hash (recomputed from the runs, not just the
    bench's own `hashes_identical` verdict);
  * zero store corruption (`corrupt == 0` in every run);
  * store evidence — every run opened the store and read at least one
    frame per partition (the data really streamed off the mmap);
  * the flat-RSS assertion — for every constrained run that could
    measure RSS (peak_rss_bytes > 0), rss_delta_bytes stays within
    budget_bytes + rss_slack_mb;
  * throughput — the tightest budget sustains at least --min-ratio
    (default 0.5, i.e. "within 2x") of the unlimited run's
    scores_per_sec. Timing-based, so the ratio is deliberately loose;
    tighten or relax per host with --min-ratio.

Usage: check_scale.py <BENCH_scale.json> [--min-ratio=0.5]
Exit codes: 0 ok, 1 gate failed, 2 unreadable input.
"""
import json
import sys


def main(argv):
    path = None
    min_ratio = 0.5
    for arg in argv[1:]:
        if arg.startswith("--min-ratio="):
            try:
                min_ratio = float(arg.split("=", 1)[1])
            except ValueError:
                print(f"check_scale: bad --min-ratio: {arg}", file=sys.stderr)
                return 2
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_scale: cannot read {path}: {error}", file=sys.stderr)
        return 2
    if doc.get("bench") != "bench_scale":
        print(f"check_scale: not a bench_scale datapoint: "
              f"{doc.get('bench')!r}", file=sys.stderr)
        return 2

    runs = doc.get("runs", [])
    if len(runs) < 2:
        print(f"check_scale: need >= 2 runs (got {len(runs)})", file=sys.stderr)
        return 1

    failures = []

    hashes = {run.get("result_hash") for run in runs}
    if len(hashes) != 1 or not doc.get("hashes_identical"):
        failures.append(f"result hashes differ across budgets: {sorted(hashes)}")

    partitions = doc.get("partitions", 0)
    slack_bytes = doc.get("rss_slack_mb", 0) * 1024 * 1024
    unlimited = None
    tightest = None
    for run in runs:
        budget = run.get("budget_bytes", 0)
        label = "unlimited" if budget == 0 else f"budget={budget}"
        if run.get("corrupt", 0) != 0:
            failures.append(f"{label}: store.corrupt = {run['corrupt']}")
        if run.get("store_opens", 0) < 1:
            failures.append(f"{label}: store was never opened")
        if run.get("frame_reads", 0) < partitions:
            failures.append(
                f"{label}: only {run.get('frame_reads', 0)} frame reads for "
                f"{partitions} partitions — data did not stream off the store"
            )
        if budget == 0:
            unlimited = run
        else:
            if tightest is None or budget < tightest["budget_bytes"]:
                tightest = run
            if run.get("peak_rss_bytes", 0) > 0:
                delta = run.get("rss_delta_bytes", 0)
                if delta > budget + slack_bytes:
                    failures.append(
                        f"{label}: RSS grew {delta} bytes > budget + "
                        f"{doc.get('rss_slack_mb', 0)} MiB slack"
                    )

    if unlimited is None:
        failures.append("no unlimited (budget=0) baseline run")
    if tightest is None:
        failures.append("no constrained (budget>0) run")

    ratio = None
    if unlimited is not None and tightest is not None:
        base = unlimited.get("scores_per_sec", 0.0)
        tight = tightest.get("scores_per_sec", 0.0)
        ratio = (tight / base) if base > 0 else 0.0
        if ratio < min_ratio:
            failures.append(
                f"tightest budget ({tightest['budget_bytes']} bytes) runs at "
                f"{ratio:.2f}x unlimited throughput, below the {min_ratio}x "
                "floor"
            )

    if tightest is not None:
        print(
            f"check_scale: {len(runs)} runs, tightest budget "
            f"{tightest['budget_bytes']} bytes: "
            f"dRSS {tightest.get('rss_delta_bytes', 0) / 2**20:.1f} MiB, "
            f"{tightest.get('frame_reads', 0)} frame reads, "
            f"{tightest.get('prefetch_frames', 0)} prefetched"
            + (f", {ratio:.2f}x unlimited throughput" if ratio is not None
               else "")
        )
    if failures:
        for failure in failures:
            print(f"check_scale: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_scale: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
