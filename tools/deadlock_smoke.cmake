# deadlock_smoke: end-to-end contract for the lock-order analyzer.
#
# 1. `deadlock_abba clean` exits 0 in every configuration.
# 2. `deadlock_abba abba` must die (not exit 0) with "potential deadlock"
#    and BOTH acquisition chains when the analyzer is active, and exit 0
#    when it is compiled out or disabled via SS_LOCK_CHECK=0.
# 3. A clean tier-1 selftest records an acyclic graph with zero rank
#    violations (lock.cycles == 0, lock.rank_violations == 0).
# 4. Bitwise-identity: the selftest's resampling result hash is unchanged
#    when the analyzer is disabled at runtime — the analyzer observes,
#    it never steers.
#
# Invoked as:
#   cmake -DABBA=<deadlock_abba> -DSPARKSCORE=<sparkscore> -DPYTHON=<python3>
#         -DOUT_DIR=<dir> -P deadlock_smoke.cmake

foreach(var ABBA SPARKSCORE PYTHON OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "deadlock_smoke: -D${var}=... is required")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

# Is the analyzer compiled in AND runtime-enabled for this build?
execute_process(
  COMMAND "${ABBA}" active
  OUTPUT_VARIABLE active_out
  RESULT_VARIABLE active_rc
  OUTPUT_STRIP_TRAILING_WHITESPACE)
if(NOT active_rc EQUAL 0)
  message(FATAL_ERROR "deadlock_smoke: '${ABBA} active' failed (rc=${active_rc})")
endif()

# --- 1. clean nesting never trips the analyzer -------------------------------
execute_process(
  COMMAND "${ABBA}" clean
  RESULT_VARIABLE clean_rc
  OUTPUT_QUIET ERROR_QUIET)
if(NOT clean_rc EQUAL 0)
  message(FATAL_ERROR "deadlock_smoke: clean sequence failed (rc=${clean_rc})")
endif()

# --- 2. injected ABBA inversion ---------------------------------------------
execute_process(
  COMMAND "${ABBA}" abba
  RESULT_VARIABLE abba_rc
  OUTPUT_VARIABLE abba_out
  ERROR_VARIABLE abba_err)
if(active_out STREQUAL "1")
  if(abba_rc EQUAL 0)
    message(FATAL_ERROR "deadlock_smoke: analyzer active but ABBA inversion "
                        "was NOT detected (exit 0)")
  endif()
  # The report must name the cycle and print both acquisition chains.
  foreach(needle
      "potential deadlock"
      "current acquisition chain"
      "previously recorded chain"
      "abba.outer"
      "abba.inner")
    string(FIND "${abba_err}" "${needle}" pos)
    if(pos EQUAL -1)
      message(FATAL_ERROR "deadlock_smoke: ABBA report missing \"${needle}\":\n${abba_err}")
    endif()
  endforeach()
  message(STATUS "deadlock_smoke: ABBA inversion caught with both chains")

  # Runtime kill-switch: SS_LOCK_CHECK=0 must neuter detection entirely.
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env SS_LOCK_CHECK=0 "${ABBA}" abba
    RESULT_VARIABLE off_rc
    OUTPUT_QUIET ERROR_QUIET)
  if(NOT off_rc EQUAL 0)
    message(FATAL_ERROR "deadlock_smoke: SS_LOCK_CHECK=0 should disable "
                        "detection but abba exited ${off_rc}")
  endif()
else()
  if(NOT abba_rc EQUAL 0)
    message(FATAL_ERROR "deadlock_smoke: analyzer inactive but abba exited "
                        "${abba_rc}:\n${abba_err}")
  endif()
  message(STATUS "deadlock_smoke: analyzer compiled out; ABBA passthrough OK")
endif()

# --- 3. clean tier-1 run: acyclic graph, zero rank violations ----------------
set(metrics_a "${OUT_DIR}/deadlock_metrics_on.json")
set(metrics_b "${OUT_DIR}/deadlock_metrics_off.json")
execute_process(
  COMMAND "${SPARKSCORE}" selftest "metrics=${metrics_a}"
  RESULT_VARIABLE self_rc
  OUTPUT_QUIET)
if(NOT self_rc EQUAL 0)
  message(FATAL_ERROR "deadlock_smoke: selftest failed (rc=${self_rc})")
endif()

# --- 4. same selftest with the analyzer off: result hash identical -----------
execute_process(
  COMMAND "${CMAKE_COMMAND}" -E env SS_LOCK_CHECK=0
          "${SPARKSCORE}" selftest "metrics=${metrics_b}"
  RESULT_VARIABLE self_off_rc
  OUTPUT_QUIET)
if(NOT self_off_rc EQUAL 0)
  message(FATAL_ERROR "deadlock_smoke: selftest with SS_LOCK_CHECK=0 failed "
                      "(rc=${self_off_rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CMAKE_CURRENT_LIST_DIR}/check_deadlock_metrics.py"
          --analyzer-active "${active_out}"
          --metrics "${metrics_a}" --metrics-off "${metrics_b}"
  RESULT_VARIABLE check_rc)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "deadlock_smoke: metrics check failed (rc=${check_rc})")
endif()

message(STATUS "deadlock_smoke: OK")
