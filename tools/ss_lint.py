#!/usr/bin/env python3
"""SparkScore project lint: stdlib-only enforcement of repo invariants.

Rules (see docs/STATIC_ANALYSIS.md for rationale and examples):

  naked-new        `new`/`delete` expressions are confined to src/support/;
                   everywhere else ownership goes through containers and
                   make_unique/make_shared. Intentional exceptions (leaked
                   process-global singletons) carry a suppression comment.
  nodiscard        `Status` and `Result` must stay declared [[nodiscard]]
                   so the compiler rejects silently dropped error codes,
                   and no source line re-introduces `std::rand`-style
                   fire-and-forget error handling by assigning a Status
                   to an unused dummy.
  std-rand         `std::rand`, `srand`, `std::random_device` and the
                   <random> engines are banned: all randomness must flow
                   through ss::Rng (support/rng.hpp) so runs stay
                   deterministic and replayable from one seed.
  pragma-once      every project header uses `#pragma once` (no #ifndef
                   guards, no guard/pragma mixes).
  iwyu-project     a file that includes a project header must actually use
                   an identifier that header declares, and a .cpp must
                   include its own header first — include-what-you-use,
                   scoped to project headers only.
  simd-dispatch    raw SIMD — `__AVX2__`/`__SSE2__` preprocessor tests and
                   the <immintrin.h>/<emmintrin.h> intrinsic headers — is
                   confined to src/stats/kernels/. Everywhere else goes
                   through the runtime dispatch table (kernels.hpp), so
                   a single SS_KERNEL switch really covers every SIMD
                   code path.
  mmap-confine     raw memory-mapped I/O — `mmap`/`munmap`/`madvise`/
                   `ftruncate` calls and the <sys/mman.h> header — is
                   confined to src/dfs/genotype_store.cpp. Everywhere
                   else reads store files through dfs::GenotypeStore so
                   mapping lifetimes, page-cache advice, and corruption
                   handling stay in one audited translation unit.
  naked-mutex      raw `std::mutex` (and lock_guard/unique_lock/plain
                   condition_variable) is confined to src/support/; the
                   rest of src/ locks through support::RankedMutex and
                   its MutexLock/UniqueLock guards so every acquisition
                   carries a rank and thread-safety annotations.
  guarded-by-coverage
                   a RankedMutex declared in src/ must be referenced by at
                   least one SS_GUARDED_BY / SS_PT_GUARDED_BY /
                   SS_REQUIRES / SS_ASSERT_HELD annotation in the same
                   file — a mutex protecting nothing annotated is either
                   unannotated state (fix it) or needs a waiver comment.
  lock-rank-registry
                   every RankedMutex in src/ is constructed from a
                   `lock_rank::k<Name>` entry in the single registry
                   (src/support/lock_ranks.hpp); duplicate names or ranks
                   in the registry are rejected.
  counter-doc-sync every counter name used with CounterRegistry
                   Get/Add (or a *Counter helper) in src/, tests/,
                   tools/, bench/, or examples/ must be documented in
                   docs/OBSERVABILITY.md; the "test." namespace is
                   exempt (scoped test-scratch counters).

A finding is suppressed by appending `// ss-lint: allow(<rule>) <why>` to
the offending line (or the line directly above it).
Exit code: 0 clean, 1 findings, 2 usage error.

Usage: ss_lint.py [--root DIR] [--list-rules] [--github]
"""

import argparse
import os
import re
import sys

SRC_DIRS = ("src",)
ALL_CODE_DIRS = ("src", "tests", "tools", "bench", "examples")
SUPPRESS_RE = re.compile(r"//\s*ss-lint:\s*allow\(([a-z\-,\s]+)\)")

FINDINGS = []


def finding(path, line_no, rule, message, line=""):
    match = SUPPRESS_RE.search(line)
    if match and rule in [r.strip() for r in match.group(1).split(",")]:
        return
    FINDINGS.append((path, line_no, rule, message))


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines
    and the suppression comments (kept so per-line allows still match)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            end = text.find("\n", i)
            end = n if end == -1 else end
            comment = text[i:end]
            out.append(comment if "ss-lint:" in comment else " " * len(comment))
            i = end
        elif c == "/" and nxt == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            out.append(re.sub(r"[^\n]", " ", text[i:end]))
            i = end
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or
                                     text[i - 1] == "_"):
            out.append(c)  # digit separator (1'000'000), not a char literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(root, dirs, exts):
    for base in dirs:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, base)):
            dirnames[:] = [d for d in dirnames if d != "CMakeFiles"]
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    yield os.path.join(dirpath, name)


def rel(root, path):
    return os.path.relpath(path, root)


# --- rule: naked-new -------------------------------------------------------

NEW_RE = re.compile(r"\bnew\b\s*(\(\s*std::nothrow\s*\)\s*)?[A-Za-z_(:<]")
DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?\s*[A-Za-z_(*]")


def check_naked_new(root):
    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        if rpath.startswith(os.path.join("src", "support") + os.sep):
            continue
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            # Suppressions may sit on the line itself or the one above it.
            context = (raw_lines[no - 2] + "\n" if no >= 2 else "") + raw
            if NEW_RE.search(line):
                finding(rpath, no, "naked-new",
                        "naked `new` outside src/support/ — use make_unique/"
                        "make_shared or a container", context)
            if DELETE_RE.search(line) and "= delete" not in line:
                finding(rpath, no, "naked-new",
                        "naked `delete` outside src/support/", context)


# --- rule: nodiscard -------------------------------------------------------

def check_nodiscard(root):
    status_hpp = os.path.join(root, "src", "support", "status.hpp")
    with open(status_hpp, encoding="utf-8") as handle:
        text = handle.read()
    if not re.search(r"class\s*\[\[nodiscard\]\]\s*Status\b", text):
        finding("src/support/status.hpp", 1, "nodiscard",
                "class Status must be declared [[nodiscard]]")
    if not re.search(r"class\s*\[\[nodiscard\]\]\s*Result\b", text):
        finding("src/support/status.hpp", 1, "nodiscard",
                "class Result must be declared [[nodiscard]]")
    # A Status assigned to a never-read dummy defeats [[nodiscard]]; the
    # deliberate-drop idiom is a (void) cast.
    dummy = re.compile(r"\b(?:ss::)?Status\s+(_|unused|ignored?|dummy)\s*=")
    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            if dummy.search(line):
                finding(rpath, no, "nodiscard",
                        "Status assigned to a dummy variable — handle it or "
                        "drop it explicitly with (void)", raw)


# --- rule: std-rand --------------------------------------------------------

BANNED_RANDOM = re.compile(
    r"\bstd::(rand|srand|random_device|mt19937(_64)?|minstd_rand0?|"
    r"default_random_engine|uniform_(int|real)_distribution|"
    r"normal_distribution|bernoulli_distribution)\b|(?<![\w:])s?rand\s*\(")


def check_std_rand(root):
    for path in iter_files(root, ALL_CODE_DIRS, {".cpp", ".hpp", ".cc", ".h"}):
        rpath = rel(root, path)
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            match = BANNED_RANDOM.search(line)
            if match:
                finding(rpath, no, "std-rand",
                        f"banned randomness source `{match.group(0).strip()}` "
                        "— use ss::Rng (support/rng.hpp)", raw)


# --- rule: pragma-once -----------------------------------------------------

def check_pragma_once(root):
    for path in iter_files(root, SRC_DIRS, {".hpp", ".h"}):
        rpath = rel(root, path)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        if "#pragma once" not in text:
            finding(rpath, 1, "pragma-once",
                    "header lacks `#pragma once` (repo convention; no "
                    "#ifndef guards)")
        stripped = strip_comments_and_strings(text)
        guard = re.search(r"#ifndef\s+\w+_(H|HPP|H_|HPP_)\b", stripped)
        if guard:
            line_no = stripped[:guard.start()].count("\n") + 1
            finding(rpath, line_no, "pragma-once",
                    "#ifndef include guard mixed with the pragma-once "
                    "convention")


# --- rule: iwyu-project ----------------------------------------------------

DECL_RES = (
    re.compile(r"\b(?:class|struct)\s+(?:\[\[nodiscard\]\]\s*)?(\w+)"),
    re.compile(r"\benum\s+(?:class\s+)?(\w+)"),
    re.compile(r"#define\s+(\w+)"),
    re.compile(r"\busing\s+(\w+)\s*="),
    re.compile(r"^[\w:<>,&*\s]+?\b(\w+)\s*\(", re.M),
    re.compile(r"\bconstexpr\s+[\w:<>]+\s+(\w+)"),
    re.compile(r"\binline\s+[\w:<>]+\s+(\w+)\s*[;{=]"),
)
GENERIC_NAMES = {"main", "operator", "if", "for", "while", "switch", "do",
                 "return", "sizeof", "decltype", "static_assert"}


def header_symbols(text):
    """Identifiers a header plausibly declares, for usage matching."""
    stripped = strip_comments_and_strings(text)
    symbols = set()
    for regex in DECL_RES:
        for match in regex.finditer(stripped):
            name = match.group(1)
            if name not in GENERIC_NAMES and len(name) > 2:
                symbols.add(name)
    return symbols


INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"', re.M)


def check_iwyu(root):
    symbol_cache = {}

    def symbols_for(header_rel):
        if header_rel not in symbol_cache:
            path = os.path.join(root, "src", header_rel)
            if not os.path.isfile(path):
                symbol_cache[header_rel] = None
            else:
                with open(path, encoding="utf-8") as handle:
                    symbol_cache[header_rel] = header_symbols(handle.read())
        return symbol_cache[header_rel]

    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        stripped = strip_comments_and_strings(text)
        includes = INCLUDE_RE.findall(text)

        # A .cpp must pair with its header as the first project include.
        if rpath.endswith(".cpp"):
            own = rel(os.path.join(root, "src"),
                      os.path.join(root, rpath))[: -len(".cpp")] + ".hpp"
            own = own.replace(os.sep, "/")
            if os.path.isfile(os.path.join(root, "src", own)):
                if not includes or includes[0] != own:
                    finding(rpath, 1, "iwyu-project",
                            f'first project include must be own header '
                            f'"{own}"')

        seen = set()
        for inc in includes:
            inc_line = text[: text.index(f'"{inc}"')].count("\n") + 1
            raw_line = text.splitlines()[inc_line - 1]
            if inc in seen:
                finding(rpath, inc_line, "iwyu-project",
                        f'duplicate include "{inc}"', raw_line)
                continue
            seen.add(inc)
            if "IWYU pragma:" in raw_line:
                continue  # export/keep: umbrella headers re-exporting an API
            symbols = symbols_for(inc)
            if symbols is None or not symbols:
                continue  # not a project header / nothing extractable
            own_header = rpath.endswith(".cpp") and includes and inc == includes[0]
            if own_header:
                continue  # the own-header pairing rule, not usage, applies
            body = stripped.replace(f'"{inc}"', "")
            used = any(re.search(rf"\b{re.escape(sym)}\b", body)
                       for sym in symbols)
            if not used:
                finding(rpath, inc_line, "iwyu-project",
                        f'include "{inc}" appears unused (no identifier it '
                        "declares is referenced)", raw_line)


# --- rule: simd-dispatch ---------------------------------------------------

SIMD_MACRO_RE = re.compile(r"\b__(AVX2|SSE2|AVX512[A-Z]*)__\b")
SIMD_INCLUDE_RE = re.compile(r'#\s*include\s*<(x?immintrin|[a-z]mmintrin)\.h>')


def check_simd_dispatch(root):
    kernels_dir = os.path.join("src", "stats", "kernels") + os.sep
    for path in iter_files(root, ALL_CODE_DIRS, {".cpp", ".hpp", ".cc", ".h"}):
        rpath = rel(root, path)
        if rpath.startswith(kernels_dir):
            continue
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            match = SIMD_MACRO_RE.search(line)
            if match:
                finding(rpath, no, "simd-dispatch",
                        f"raw `{match.group(0)}` test outside "
                        "src/stats/kernels/ — route SIMD through the "
                        "dispatch table (stats/kernels/kernels.hpp)", raw)
            match = SIMD_INCLUDE_RE.search(line)
            if match:
                finding(rpath, no, "simd-dispatch",
                        f"intrinsic header <{match.group(1)}.h> outside "
                        "src/stats/kernels/ — route SIMD through the "
                        "dispatch table (stats/kernels/kernels.hpp)", raw)


# --- rule: mmap-confine ----------------------------------------------------

MMAP_CALL_RE = re.compile(r"\b(mmap|munmap|madvise|ftruncate)\s*\(")
MMAP_INCLUDE_RE = re.compile(r"#\s*include\s*<sys/mman\.h>")


def check_mmap_confine(root):
    store_tu = os.path.join("src", "dfs", "genotype_store.cpp")
    for path in iter_files(root, ALL_CODE_DIRS, {".cpp", ".hpp", ".cc", ".h"}):
        rpath = rel(root, path)
        if rpath == store_tu:
            continue
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            match = MMAP_CALL_RE.search(line)
            if match:
                finding(rpath, no, "mmap-confine",
                        f"raw `{match.group(1)}` call outside "
                        "src/dfs/genotype_store.cpp — go through "
                        "dfs::GenotypeStore so mapping lifetime and "
                        "corruption handling stay centralized", raw)
            if MMAP_INCLUDE_RE.search(line):
                finding(rpath, no, "mmap-confine",
                        "<sys/mman.h> outside src/dfs/genotype_store.cpp — "
                        "go through dfs::GenotypeStore", raw)


# --- rule: naked-mutex -----------------------------------------------------

NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
    r"recursive_timed_mutex|lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable)\b(?!_any)")


def check_naked_mutex(root):
    support_dir = os.path.join("src", "support") + os.sep
    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        if rpath.startswith(support_dir):
            continue  # RankedMutex itself wraps std::mutex here
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            match = NAKED_MUTEX_RE.search(line)
            if match:
                context = (raw_lines[no - 2] + "\n" if no >= 2 else "") + raw
                finding(rpath, no, "naked-mutex",
                        f"raw `std::{match.group(1)}` outside src/support/ — "
                        "use support::RankedMutex with MutexLock/UniqueLock "
                        "(and condition_variable_any) so the acquisition is "
                        "ranked and annotated", context)


# --- rule: guarded-by-coverage ---------------------------------------------

RANKED_MUTEX_DECL_RE = re.compile(
    r"\bRankedMutex\s+(\w+)\s*[{(;=]")
ANNOTATION_USE_TEMPLATE = (
    r"\b(?:SS_GUARDED_BY|SS_PT_GUARDED_BY|SS_REQUIRES|SS_EXCLUDES|"
    r"SS_ACQUIRED_BEFORE|SS_ACQUIRED_AFTER|SS_ASSERT_HELD)\s*\([^)]*\b{m}\b")


def check_guarded_by_coverage(root):
    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        if rpath == os.path.join("src", "support", "ranked_mutex.hpp"):
            continue  # defines RankedMutex; nothing of its own to guard
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped_text = strip_comments_and_strings("\n".join(raw_lines))
        stripped = stripped_text.splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            match = RANKED_MUTEX_DECL_RE.search(line)
            if not match:
                continue
            name = match.group(1)
            use_re = re.compile(ANNOTATION_USE_TEMPLATE.format(
                m=re.escape(name)))
            if use_re.search(stripped_text):
                continue
            context = (raw_lines[no - 2] + "\n" if no >= 2 else "") + raw
            finding(rpath, no, "guarded-by-coverage",
                    f"RankedMutex `{name}` has no SS_GUARDED_BY/SS_REQUIRES "
                    "annotation referencing it in this file — annotate the "
                    "state it protects or add a waiver comment "
                    "(docs/STATIC_ANALYSIS.md)", context)


# --- rule: lock-rank-registry ----------------------------------------------

REGISTRY_ENTRY_RE = re.compile(
    r'inline constexpr LockRank (k\w+)\{"([a-z0-9_.]+)", (\d+)\};')


def check_lock_rank_registry(root):
    registry_rel = os.path.join("src", "support", "lock_ranks.hpp")
    registry_path = os.path.join(root, registry_rel)
    if not os.path.isfile(registry_path):
        finding(registry_rel, 1, "lock-rank-registry",
                "lock-rank registry src/support/lock_ranks.hpp is missing")
        return
    with open(registry_path, encoding="utf-8") as handle:
        registry_text = handle.read()
    by_name, by_rank = {}, {}
    for match in REGISTRY_ENTRY_RE.finditer(registry_text):
        const, name, rank = match.group(1), match.group(2), int(match.group(3))
        line_no = registry_text[: match.start()].count("\n") + 1
        if name in by_name:
            finding(registry_rel, line_no, "lock-rank-registry",
                    f'duplicate lock name "{name}" (also {by_name[name]})')
        if rank in by_rank:
            finding(registry_rel, line_no, "lock-rank-registry",
                    f"duplicate rank {rank} ({const} collides with "
                    f"{by_rank[rank]})")
        by_name.setdefault(name, const)
        by_rank.setdefault(rank, const)
    if not by_name:
        finding(registry_rel, 1, "lock-rank-registry",
                "no LockRank entries parsed from the registry (format "
                'drifted? expected `inline constexpr LockRank kX{"name", N};`)')
        return

    # Every RankedMutex constructed in src/ must draw from the registry.
    construct_re = re.compile(r"\bRankedMutex\s+\w+\s*[{(]")
    for path in iter_files(root, SRC_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        if rpath.startswith(os.path.join("src", "support") + os.sep):
            if os.path.basename(rpath).startswith("ranked_mutex"):
                continue  # the wrapper's own declarations take any LockRank
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        stripped = strip_comments_and_strings("\n".join(raw_lines)).splitlines()
        for no, (line, raw) in enumerate(zip(stripped, raw_lines), 1):
            if construct_re.search(line) and "lock_rank::k" not in line:
                context = (raw_lines[no - 2] + "\n" if no >= 2 else "") + raw
                finding(rpath, no, "lock-rank-registry",
                        "RankedMutex constructed without a lock_rank::k* "
                        "registry entry (src/support/lock_ranks.hpp)", context)


# --- rule: counter-doc-sync ------------------------------------------------

# Dotted-name string literals handed to the counter registry, covering
# direct Get/Add calls and local helpers like CacheCounter("...").
COUNTER_CALL_RE = re.compile(
    r"\b(?:Get|Add|\w*Counter)\s*\(\s*\"([a-z0-9_]+(?:\.[a-z0-9_.]+)+)\"")


def check_counter_doc_sync(root):
    doc_rel = os.path.join("docs", "OBSERVABILITY.md")
    doc_path = os.path.join(root, doc_rel)
    if not os.path.isfile(doc_path):
        finding(doc_rel, 1, "counter-doc-sync",
                "docs/OBSERVABILITY.md is missing")
        return
    with open(doc_path, encoding="utf-8") as handle:
        doc_text = handle.read()
    # Scan every code dir, not just src/: a bench or tool that mints an
    # undocumented counter pollutes the same process-global registry (and
    # the metrics JSON "counters" section) just as much as src/ does.
    # Counters under the "test." namespace are exempt — tests mint scoped
    # scratch counters by design (e.g. "test.trace_test.a").
    for path in iter_files(root, ALL_CODE_DIRS, {".cpp", ".hpp"}):
        rpath = rel(root, path)
        with open(path, encoding="utf-8") as handle:
            raw_lines = handle.read().splitlines()
        for no, raw in enumerate(raw_lines, 1):
            if raw.lstrip().startswith("//"):
                continue  # doc comments may show example names
            for match in COUNTER_CALL_RE.finditer(raw):
                name = match.group(1)
                if name.startswith("test."):
                    continue
                if name not in doc_text:
                    context = ((raw_lines[no - 2] + "\n" if no >= 2 else "")
                               + raw)
                    finding(rpath, no, "counter-doc-sync",
                            f'counter "{name}" is not documented in '
                            "docs/OBSERVABILITY.md", context)


RULES = {
    "naked-new": check_naked_new,
    "nodiscard": check_nodiscard,
    "std-rand": check_std_rand,
    "pragma-once": check_pragma_once,
    "iwyu-project": check_iwyu,
    "simd-dispatch": check_simd_dispatch,
    "mmap-confine": check_mmap_confine,
    "naked-mutex": check_naked_mutex,
    "guarded-by-coverage": check_guarded_by_coverage,
    "lock-rank-registry": check_lock_rank_registry,
    "counter-doc-sync": check_counter_doc_sync,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--rule", action="append", choices=sorted(RULES),
                        help="run only the named rule(s)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub workflow ::error annotations so "
                        "findings show inline on pull requests")
    args = parser.parse_args()

    if args.list_rules:
        for name in sorted(RULES):
            print(name)
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"ss_lint: no src/ under {root}", file=sys.stderr)
        return 2

    for name in args.rule or sorted(RULES):
        RULES[name](root)

    for path, line_no, rule, message in sorted(FINDINGS):
        if args.github:
            # GitHub strips %, \r and \n from workflow-command messages
            # unless escaped; paths/rules are repo-controlled and safe.
            escaped = (message.replace("%", "%25").replace("\r", "%0D")
                       .replace("\n", "%0A"))
            print(f"::error file={path},line={line_no},"
                  f"title=ss-lint {rule}::{escaped}")
        else:
            print(f"{path}:{line_no}: [{rule}] {message}")
    if FINDINGS:
        print(f"ss_lint: {len(FINDINGS)} finding(s)", file=sys.stderr)
        return 1
    print("ss_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
