#!/usr/bin/env python3
"""Gate on the bench_pvalue datapoint (BENCH_pvalue.json).

Always enforced (the numbers are deterministic for a fixed seed — no
host-speed exemptions apply to replicate counts):
  * the hybrid engine consumed >= 10x fewer set-replicates than the
    exhaustive baseline (the headline claim of the adaptive engine);
  * zero classification disagreements at alpha = 0.05 outside the
    exemption band [alpha/2, 2*alpha];
  * zero per-set tolerance violations (the bench re-checks the
    statistical-equivalence contract on the measured run);
  * the hybrid run actually exercised the machinery: at least one set
    refined, at least one early stop.

Usage: check_pvalue_savings.py <BENCH_pvalue.json>
"""
import json
import sys

MIN_SAVINGS = 10.0


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        data = json.load(f)

    failures = []

    savings = data.get("savings_ratio", 0.0)
    if savings < MIN_SAVINGS:
        failures.append(
            f"replicate savings {savings:.1f}x < required {MIN_SAVINGS}x"
        )
    else:
        print(f"[pvalue] savings {savings:.1f}x >= {MIN_SAVINGS}x")

    disagreements = data.get("disagreements", -1)
    if disagreements != 0:
        failures.append(
            f"{disagreements} classification disagreements at alpha=0.05"
        )
    else:
        print("[pvalue] zero classification disagreements")

    violations = data.get("tolerance_violations", -1)
    if violations != 0:
        failures.append(f"{violations} per-set tolerance violations")
    else:
        print("[pvalue] all sets within the equivalence tolerance")

    hybrid = data.get("hybrid", {})
    if hybrid.get("refined_sets", 0) < 1:
        failures.append("no set was refined — the screen never fired")
    if hybrid.get("early_stops", 0) < 1:
        failures.append("no early stop occurred — the stopper never fired")

    for failure in failures:
        print(f"[pvalue] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
