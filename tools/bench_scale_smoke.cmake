# Driver for the bench_scale_smoke ctest: bench_scale at reduced scale
# (20k SNPs x 200 patients instead of the paper-scale 1M x 1k), staging
# the packed genotype store into OUT_DIR, sweeping the default budget
# ladder {unlimited, P, P/4, P/16}, and writing a BENCH_scale.json
# datapoint gated by check_scale.py: bitwise-identical result hashes
# across budgets, zero store corruption, frames streamed off the mmap in
# every run, the flat-RSS assertion for constrained budgets, and the
# tightest budget holding >= 0.05x of unlimited throughput. The ratio
# floor is a liveness check here, not a perf gate (precedent:
# check_executor_overlap.py): at smoke scale one pass of tiny-compute
# partitions is spill-I/O-bound, so the tight-budget ratio sits near
# 0.1x, where the full-scale bench amortizes the same I/O over 25x more
# compute per byte and is gated at check_scale.py's default 0.5x.
# Invoked as:
#   cmake -DBENCH=<bench_scale bin> -DPYTHON=<python3>
#         -DCHECK=<check_scale.py> -DOUT_DIR=<dir> -P bench_scale_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(datapoint "${OUT_DIR}/BENCH_scale.json")
set(store "${OUT_DIR}/bench_scale_smoke.ssg")
set(spill "${OUT_DIR}/bench_scale_smoke_spill")

# Restage every run: a stale store from an older format version would
# otherwise fail Open (correctly, but confusingly) inside the smoke.
file(REMOVE "${store}")

execute_process(
  COMMAND "${BENCH}" "patients=200" "snps=20000" "sets=50" "partitions=20"
          "iters=4" "batch=4" "threads=2" "store=${store}"
          "spill_dir=${spill}" "datapoint=${datapoint}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_scale failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${datapoint}" "--min-ratio=0.05"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "scale gate failed (exit ${check_result})")
endif()
