#!/usr/bin/env python3
"""Validates a SparkScore Chrome-trace JSON (and optionally the run-metrics
JSON) produced by `sparkscore ... trace=<file> metrics=<file>`.

Checks, stdlib only:
  * the trace parses as JSON and has the trace_event envelope;
  * every event carries name/ph/ts/pid/tid, with a known phase and a known
    category (`cat`) — an unknown category means a producer emitted a new
    event family without registering it here and in docs/OBSERVABILITY.md;
  * B/E spans balance per thread and nest (LIFO) with matching names;
  * timestamps are non-decreasing (events are driver-sorted);
  * the metrics JSON (if given) matches schema sparkscore-run-metrics-v2,
    its per-stage histogram counts sum to the stage's task count, its
    cache object carries the full two-tier key set (memory + spill), its
    kernel object names a known SIMD dispatch level and carries the
    genotype packing byte counters, its store object carries the
    genotype-store counter set (opens/frame I/O/prefetch/corrupt), and
    its timeline section (v2) is
    internally consistent: known phase names, per-stage phase_seconds
    arrays of the right arity, stage task counts matching the v1 stage
    list, critical-path spans summing to the advertised total, and the
    critical path bounded by the measured wall-clock.

Exit code 0 and a one-line summary on success; 1 with a diagnostic on the
first violation. Used by the `trace_smoke` ctest; see docs/OBSERVABILITY.md.

Usage: check_trace.py <trace.json> [metrics.json]
"""
import json
import sys

KNOWN_PHASES = {"B", "E", "i"}

# Every event family the engine emits; see docs/OBSERVABILITY.md. `spill`
# covers the cache's second tier (spill/reload/corrupt instants); `phase`
# is the timeline profiler's nested per-task phase spans (fetch/decode/
# spill_write/handoff); `prefetch` is the async executor's I/O-lane spans
# (cache prefetches and Monte Carlo Z-block staging).
KNOWN_CATEGORIES = {
    "stage", "task", "algo", "batch", "replicate",
    "cache", "dfs", "broadcast", "fault", "spill", "phase", "prefetch",
    "store",
}

# The timeline profiler's phase vocabulary, in TaskPhase enum order.
TIMELINE_PHASES = (
    "queue_wait", "fetch", "decode", "compute", "spill_write", "handoff",
    "prefetch", "io_wait",
)

# The cache section (unchanged since v1): memory-tier keys plus
# the spill-tier extension. Consumers key on these names.
CACHE_KEYS = (
    "hits", "misses", "insertions", "evictions", "dropped_by_failure",
    "bytes_cached", "spills", "spill_bytes", "reloads", "reload_nanos",
    "spill_corrupt", "bytes_spilled",
)

# The kernel section: the SIMD dispatch level in effect (numeric + name)
# and the 2-bit genotype packing byte counters.
KERNEL_KEYS = ("dispatch", "dispatch_name", "packed_bytes", "unpacked_bytes")
KERNEL_DISPATCH_NAMES = {"scalar", "sse2", "avx2", "unknown"}

# The adaptive p-value engine section: mirrors the pvalue.* counters
# (all zeros for legacy pure-resampling runs).
PVALUE_KEYS = (
    "analytic_screens", "refined_sets", "early_stops", "replicates_saved",
)

# The memory-mapped genotype store section: mirrors the store.* counters
# (all zeros for runs that never open or stage a store file).
STORE_KEYS = (
    "opens", "frame_reads", "read_bytes", "frame_writes", "write_bytes",
    "prefetch_frames", "corrupt",
)


def fail(message):
    print(f"check_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    """Loads a JSON artifact ('-' = stdin, pairing with the producers'
    metrics=-/trace=- streaming mode), failing cleanly on the shapes a
    crashed or sanitizer-killed producer leaves behind: missing file,
    empty file, or a partially written (truncated) document."""
    try:
        if path == "-":
            text = sys.stdin.read()
        else:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        fail(f"cannot read {path}: {error} (did the producer crash?)")
    if not text.strip():
        fail(f"{path} is empty — producer was likely killed before writing "
             "(e.g. by a sanitizer abort)")
    if path == "-":
        # Streamed mode shares the pipe with the producer's human-readable
        # output; the document starts at the first '{'.
        start = text.find("{")
        if start < 0:
            fail("stdin carries no JSON document")
        try:
            doc, _ = json.JSONDecoder().raw_decode(text[start:])
            return doc
        except json.JSONDecodeError as error:
            fail(f"stdin is not valid JSON (truncated write?): {error}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON (truncated write?): {error}")


def check_trace(path):
    doc = load_json(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path} has no traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path} has an empty traceEvents array")

    stacks = {}  # tid -> stack of open span names
    last_ts = None
    counts = {"B": 0, "E": 0, "i": 0}
    for n, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(f"event #{n} is missing '{key}': {event}")
        phase = event["ph"]
        if phase not in KNOWN_PHASES:
            fail(f"event #{n} has unknown phase '{phase}'")
        category = event.get("cat")
        if category not in KNOWN_CATEGORIES:
            fail(f"event #{n} has unknown category '{category}'")
        counts[phase] += 1
        ts = event["ts"]
        if last_ts is not None and ts < last_ts:
            fail(f"event #{n} goes back in time ({ts} < {last_ts})")
        last_ts = ts
        stack = stacks.setdefault(event["tid"], [])
        if phase == "B":
            stack.append(event["name"])
        elif phase == "E":
            if not stack:
                fail(f"event #{n}: End with no open span on tid {event['tid']}")
            opened = stack.pop()
            if opened != event["name"]:
                fail(
                    f"event #{n}: End '{event['name']}' does not match "
                    f"open span '{opened}' on tid {event['tid']}"
                )
    for tid, stack in stacks.items():
        if stack:
            fail(f"tid {tid} has unclosed spans: {stack}")
    if counts["B"] == 0:
        fail("trace contains no spans at all")
    return counts


def check_timeline(path, doc):
    """Validates the v2 timeline section against itself and the v1 stage
    list it annotates."""
    timeline = doc["timeline"]
    for key in ("collected", "wall_seconds", "straggler_mad_k", "phases",
                "stages", "critical_path", "workers"):
        if key not in timeline:
            fail(f"{path} timeline section is missing '{key}'")
    if tuple(timeline["phases"]) != TIMELINE_PHASES:
        fail(f"{path} timeline.phases is {timeline['phases']}")
    if not timeline["collected"]:
        if timeline["stages"] or timeline["workers"]:
            fail(f"{path} timeline not collected but carries stages/workers")
        return
    v1_tasks = {stage["id"]: stage["tasks"] for stage in doc["stages"]}
    wall = timeline["wall_seconds"]
    for stage in timeline["stages"]:
        sid = stage["id"]
        if sid not in v1_tasks:
            fail(f"{path} timeline stage {sid} has no v1 stage entry")
        if stage["tasks"] != v1_tasks[sid]:
            fail(
                f"{path} timeline stage {sid} has {stage['tasks']} tasks, "
                f"v1 stage list says {v1_tasks[sid]}"
            )
        for key in ("phase_seconds",):
            if len(stage[key]) != len(TIMELINE_PHASES):
                fail(f"{path} stage {sid} {key} has arity {len(stage[key])}")
        if len(stage["critical"]["phase_seconds"]) != len(TIMELINE_PHASES):
            fail(f"{path} stage {sid} critical phase_seconds arity is wrong")
        if any(value < 0 for value in stage["phase_seconds"]):
            fail(f"{path} stage {sid} has a negative phase duration")
    critical = timeline["critical_path"]
    span_sum = sum(span["seconds"] for span in critical["spans"])
    if abs(span_sum - critical["seconds"]) > 1e-6 + 1e-3 * abs(span_sum):
        fail(
            f"{path} critical-path spans sum to {span_sum}, section "
            f"advertises {critical['seconds']}"
        )
    # The defining invariant: stages run sequentially from the driver, so
    # the per-stage critical chain can never exceed the measured wall.
    if critical["seconds"] > wall * (1 + 1e-6) + 1e-6:
        fail(
            f"{path} critical path {critical['seconds']}s exceeds wall "
            f"{wall}s"
        )
    for worker in timeline["workers"]:
        if worker["busy_seconds"] > wall * (1 + 1e-6) + 1e-6:
            fail(
                f"{path} worker {worker['worker']} busy "
                f"{worker['busy_seconds']}s exceeds wall {wall}s"
            )
        if not (0 <= worker["utilization"] <= 1 + 1e-6):
            fail(
                f"{path} worker {worker['worker']} utilization "
                f"{worker['utilization']} out of range"
            )


def check_metrics(path):
    doc = load_json(path)
    if doc.get("schema") != "sparkscore-run-metrics-v2":
        fail(f"{path} schema is {doc.get('schema')!r}")
    for key in ("totals", "stages", "cache", "broadcast_bytes", "kernel",
                "pvalue", "store", "timeline", "counters"):
        if key not in doc:
            fail(f"{path} is missing '{key}'")
    for key in CACHE_KEYS:
        if key not in doc["cache"]:
            fail(f"{path} cache section is missing '{key}'")
    for key in KERNEL_KEYS:
        if key not in doc["kernel"]:
            fail(f"{path} kernel section is missing '{key}'")
    for key in PVALUE_KEYS:
        if key not in doc["pvalue"]:
            fail(f"{path} pvalue section is missing '{key}'")
    for key in STORE_KEYS:
        if key not in doc["store"]:
            fail(f"{path} store section is missing '{key}'")
    if doc["kernel"]["dispatch_name"] not in KERNEL_DISPATCH_NAMES:
        fail(
            f"{path} kernel.dispatch_name is "
            f"{doc['kernel']['dispatch_name']!r}"
        )
    total_tasks = 0
    for stage in doc["stages"]:
        hist = stage["task_seconds_hist"]
        if len(hist["counts"]) != len(hist["le"]) + 1:
            fail(f"stage {stage['id']}: histogram is missing the overflow bucket")
        if sum(hist["counts"]) != stage["tasks"]:
            fail(
                f"stage {stage['id']}: histogram sums to "
                f"{sum(hist['counts'])}, expected {stage['tasks']} tasks"
            )
        total_tasks += stage["tasks"]
    if doc["totals"]["tasks"] != total_tasks:
        fail(
            f"totals.tasks={doc['totals']['tasks']} but stages sum to "
            f"{total_tasks}"
        )
    check_timeline(path, doc)
    return total_tasks


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    counts = check_trace(argv[1])
    summary = (
        f"{counts['B']} spans, {counts['i']} instants in {argv[1]}"
    )
    if len(argv) == 3:
        tasks = check_metrics(argv[2])
        summary += f"; {tasks} tasks in {argv[2]}"
    print(f"check_trace: OK: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
