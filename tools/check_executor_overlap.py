#!/usr/bin/env python3
"""Gate on a bench_executor datapoint (stdlib only).

Hard requirements — these hold on any host, sanitized or not, because
they are structural, not timing-based:
  * the synchronous and overlapped runs produced bitwise-identical
    resampling results (`hashes_identical`);
  * the overlapped run actually exercised the I/O lane (exec.io_jobs > 0);
  * with more than one resampling batch, Z-block staging happened
    (exec.zblock_prefetches > 0);
  * with async spill enabled and spill traffic present, at least one
    frame write ran on the lane, and none failed (this bench never
    injects faults);
  * the constrained budget produced the spill traffic the bench exists
    to overlap (overlapped run spills > 0).

Timing (overlapped vs synchronous seconds) is printed but NOT gated:
wall-clock comparisons at smoke scale on shared or sanitized hosts are
noise. tools/ss_prof.py --compare is the right tool for real runs.

Usage: check_executor_overlap.py <BENCH_executor.json>
Exit codes: 0 ok, 1 gate failed, 2 unreadable input.
"""
import json
import sys


def main(argv):
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"check_executor_overlap: cannot read {argv[1]}: {error}",
              file=sys.stderr)
        return 2
    if doc.get("bench") != "bench_executor":
        print(f"check_executor_overlap: not a bench_executor datapoint: "
              f"{doc.get('bench')!r}", file=sys.stderr)
        return 2

    failures = []
    if not doc.get("hashes_identical"):
        hashes = doc.get("result_hash", {})
        failures.append(
            "result hashes differ between sync and overlapped runs: "
            f"{hashes.get('sync')} vs {hashes.get('overlap')}"
        )
    exec_counters = doc.get("exec", {})
    if exec_counters.get("io_jobs", 0) <= 0:
        failures.append("overlapped run enqueued no I/O lane jobs")
    batches = (doc.get("iters", 0) + doc.get("batch", 1) - 1) // max(
        1, doc.get("batch", 1))
    if batches > 1 and exec_counters.get("zblock_prefetches", 0) <= 0:
        failures.append(
            f"{batches} batches but no Z-blocks were staged on the lane"
        )
    overlap_spills = doc.get("spills", {}).get("overlap", 0)
    if overlap_spills <= 0:
        failures.append(
            "no spill traffic under the constrained budget — nothing to "
            "overlap; shrink budget_bytes"
        )
    if doc.get("spill_async") and overlap_spills > 0:
        if exec_counters.get("spill_async_writes", 0) <= 0:
            failures.append(
                "spill_async on and spills happened, but no frame write "
                "ran on the lane"
            )
        if exec_counters.get("spill_async_failures", 0) > 0:
            failures.append(
                f"{exec_counters['spill_async_failures']} background frame "
                "writes failed with no fault injected"
            )

    seconds = doc.get("seconds", {})
    print(
        f"check_executor_overlap: sync {seconds.get('sync', 0):.3f}s vs "
        f"overlapped {seconds.get('overlap', 0):.3f}s (informational); "
        f"{exec_counters.get('io_jobs', 0)} lane jobs, "
        f"{exec_counters.get('zblock_prefetches', 0)} z-blocks, "
        f"{exec_counters.get('spill_async_writes', 0)} async writes, "
        f"{overlap_spills} spills"
    )
    if failures:
        for failure in failures:
            print(f"check_executor_overlap: FAIL: {failure}", file=sys.stderr)
        return 1
    print("check_executor_overlap: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
