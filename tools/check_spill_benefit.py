#!/usr/bin/env python3
"""Asserts that the spill tier actually paid off in a bench_caching
constrained-budget run (`mode=budget`), from its two artifacts:

  * the run-metrics JSON (metrics=<file>) — the tight+spill configuration
    runs last, so its cache section must show nonzero `spills` and
    `reloads` (otherwise the budget never forced the second tier and the
    comparison is vacuous);
  * the captured stdout — the shape-check line must read
    "reload-from-spill (...) BEATS lineage recompute (...)", i.e. in the
    paper-faithful cost regime reloading an evicted U partition is
    strictly faster than replaying its lineage.

Exit code 0 with a one-line summary on success; 1 with a diagnostic on
the first violation. Used by the `bench_smoke` ctest; stdlib only.

Usage: check_spill_benefit.py <metrics.json> <bench_stdout.txt>
"""
import json
import re
import sys


def fail(message):
    print(f"check_spill_benefit: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    metrics_path, stdout_path = argv[1], argv[2]

    try:
        with open(metrics_path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"cannot load {metrics_path}: {error}")
    cache = doc.get("cache", {})
    spills = cache.get("spills", 0)
    reloads = cache.get("reloads", 0)
    if spills <= 0:
        fail(f"{metrics_path}: cache.spills={spills} — the budget never "
             "forced an eviction into the spill tier (vacuous run)")
    if reloads <= 0:
        fail(f"{metrics_path}: cache.reloads={reloads} — nothing was ever "
             "read back from the spill tier (vacuous run)")
    if cache.get("spill_corrupt", 0) != 0:
        fail(f"{metrics_path}: cache.spill_corrupt="
             f"{cache['spill_corrupt']} in a run with no injected faults")

    try:
        with open(stdout_path, encoding="utf-8") as handle:
            stdout = handle.read()
    except OSError as error:
        fail(f"cannot read {stdout_path}: {error}")
    shape = re.search(
        r"reload-from-spill \(([0-9.]+)s\) (BEATS|does NOT beat) "
        r"lineage recompute \(([0-9.]+)s\)",
        stdout,
    )
    if shape is None:
        fail(f"{stdout_path} has no constrained-budget shape-check line")
    if shape.group(2) != "BEATS":
        fail(
            f"reload-from-spill ({shape.group(1)}s) did not beat lineage "
            f"recompute ({shape.group(3)}s) — the spill tier is not paying "
            "for itself in the paper-faithful cost regime"
        )

    print(
        f"check_spill_benefit: OK: {spills} spills, {reloads} reloads; "
        f"reload {shape.group(1)}s < recompute {shape.group(3)}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
