#!/usr/bin/env python3
"""Asserts the lock-order analyzer's clean-run contract from metrics JSON.

Driven by tools/deadlock_smoke.cmake after two `sparkscore selftest` runs:
one with the analyzer in its default mode, one with SS_LOCK_CHECK=0.

Checks:
  * lock.cycles == 0 and lock.rank_violations == 0 on the clean run — the
    tier-1 pipeline's acquisition graph is acyclic and rank-ordered.
  * when the analyzer is active, lock.acquisitions > 0 (it actually
    observed the run) and lock.graph_nodes > 0.
  * resampling.result_hash is identical between the two runs: the
    analyzer observes scheduling, it must never perturb results.
"""
import argparse
import json
import sys


def load_counters(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise SystemExit(f"{path}: no 'counters' object in metrics JSON")
    return counters


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--analyzer-active", required=True, choices=["0", "1"])
    parser.add_argument("--metrics", required=True,
                        help="metrics JSON from the default-mode selftest")
    parser.add_argument("--metrics-off", required=True,
                        help="metrics JSON from the SS_LOCK_CHECK=0 selftest")
    args = parser.parse_args()

    on = load_counters(args.metrics)
    off = load_counters(args.metrics_off)
    failures = []

    if on.get("lock.cycles", 0) != 0:
        failures.append(
            f"lock.cycles = {on['lock.cycles']} (clean run must be acyclic)")
    if on.get("lock.rank_violations", 0) != 0:
        failures.append(
            f"lock.rank_violations = {on['lock.rank_violations']} "
            "(clean run must respect the rank table)")

    if args.analyzer_active == "1":
        if on.get("lock.acquisitions", 0) == 0:
            failures.append(
                "analyzer active but lock.acquisitions == 0 "
                "(it observed nothing)")
        if on.get("lock.graph_nodes", 0) == 0:
            failures.append("analyzer active but lock.graph_nodes == 0")
    else:
        if on.get("lock.acquisitions", 0) != 0:
            failures.append(
                "analyzer compiled out but lock.acquisitions != 0")

    hash_on = on.get("resampling.result_hash")
    hash_off = off.get("resampling.result_hash")
    if hash_on is None or hash_off is None:
        failures.append("resampling.result_hash missing from metrics")
    elif hash_on != hash_off:
        failures.append(
            f"resampling.result_hash diverged: {hash_on} (analyzer on) vs "
            f"{hash_off} (SS_LOCK_CHECK=0) — the analyzer perturbed results")

    if failures:
        for f in failures:
            print(f"check_deadlock_metrics: FAIL: {f}", file=sys.stderr)
        return 1
    print(f"check_deadlock_metrics: OK (result_hash={hash_on}, "
          f"acquisitions={on.get('lock.acquisitions', 0)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
