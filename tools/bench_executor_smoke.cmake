# Driver for the bench_executor_smoke ctest: bench_executor at tiny
# scale, writing a BENCH_executor.json datapoint, gated by
# check_executor_overlap.py (bitwise-identical result hashes between the
# synchronous and overlapped runs, plus structural evidence the I/O lane
# ran: lane jobs, staged Z-blocks, async frame writes). The overlapped
# run's metrics artifact is then cross-checked by check_trace.py so the
# new prefetch/io_wait phases and `prefetch` trace category stay schema-
# valid end to end.
# Invoked as:
#   cmake -DBENCH=<bench_executor bin> -DPYTHON=<python3>
#         -DCHECK=<check_executor_overlap.py> -DCHECK_TRACE=<check_trace.py>
#         -DOUT_DIR=<dir> -P bench_executor_smoke.cmake
# The executor-matrix CI job forces SS_PREFETCH / SS_SPILL_ASYNC over the
# whole suite; this smoke *is* the sync-vs-overlap comparison, so the
# override would collapse both sides into one configuration. Drop it.
unset(ENV{SS_PREFETCH})
unset(ENV{SS_SPILL_ASYNC})

file(MAKE_DIRECTORY "${OUT_DIR}")
set(datapoint "${OUT_DIR}/BENCH_executor.json")
set(metrics "${OUT_DIR}/bench_executor_metrics.json")
set(trace "${OUT_DIR}/bench_executor_trace.json")

execute_process(
  COMMAND "${BENCH}" "patients=60" "snps=200" "sets=20" "reps=1"
          "budget_iters=48" "batch=8" "prefetch=2" "io_threads=2"
          "spill_async=1" "faithful=0" "trace=${trace}"
          "metrics=${metrics}" "datapoint=${datapoint}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_executor failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${datapoint}"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "executor overlap gate failed (exit ${check_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK_TRACE}" "${trace}" "${metrics}"
  RESULT_VARIABLE trace_result
)
if(NOT trace_result EQUAL 0)
  message(FATAL_ERROR "executor trace/metrics schema check failed (exit ${trace_result})")
endif()
