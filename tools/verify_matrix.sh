#!/usr/bin/env bash
# Runs the tier-1 ctest suite under every sanitizer configuration.
#
#   tools/verify_matrix.sh [plain|address|undefined|address,undefined|thread ...]
#
# With no arguments, runs the full matrix: plain RelWithDebInfo, then
# address+undefined combined, then thread. Each configuration builds into
# its own build-verify-<name> directory so the matrix is incremental across
# invocations. The suite includes the spill-tier tests (CacheSpillTest,
# SpillSoakMatrix, the spill-sabotage fault tests), so frame encode/decode,
# concurrent evict/reload, and the corrupt-frame fallback path all run
# under ASan/UBSan and TSan here. Any unsuppressed sanitizer report fails the corresponding
# ctest run (UBSan is built with -fno-sanitize-recover=all; ASan and TSan
# are fail-by-default). Suppressions live in tools/sanitizers/ — see
# docs/STATIC_ANALYSIS.md before adding one.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=(plain address,undefined thread)
fi

export ASAN_OPTIONS="${ASAN_OPTIONS:-strict_string_checks=1:detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:suppressions=$ROOT/tools/sanitizers/ubsan.supp}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-suppressions=$ROOT/tools/sanitizers/tsan.supp:history_size=7}"
export LSAN_OPTIONS="${LSAN_OPTIONS:-suppressions=$ROOT/tools/sanitizers/lsan.supp}"

failures=()
for config in "${CONFIGS[@]}"; do
  name="${config//,/ -}"
  dir="$ROOT/build-verify-${config//,/-}"
  echo "==== verify_matrix: $name -> $dir ===="
  sanitize=""
  [ "$config" != "plain" ] && sanitize="$config"
  cmake -S "$ROOT" -B "$dir" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DSPARKSCORE_SANITIZE="$sanitize" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  if ctest --test-dir "$dir" --output-on-failure -j "$JOBS"; then
    echo "==== verify_matrix: $name OK ===="
  else
    echo "==== verify_matrix: $name FAILED ===="
    failures+=("$name")
  fi
done

if [ ${#failures[@]} -gt 0 ]; then
  echo "verify_matrix: FAILED configurations: ${failures[*]}" >&2
  exit 1
fi
echo "verify_matrix: all configurations passed (${CONFIGS[*]})"
