#!/usr/bin/env python3
"""Gate on the bench_kernels datapoint (BENCH_kernels.json).

Always enforced:
  * cross-level outputs were bitwise identical while timing;
  * 2-bit genotype packing shrank the payload by ~4x (>= 3.5x allows for
    the per-block ceil(n/4) rounding at small n).

Enforced only on a meaningful host (optimized build, no sanitizers, AVX2
present) — skipped cleanly otherwise:
  * the AVX2 batched-MAC kernel is >= 1.5x faster than scalar.

Usage: check_kernel_speedup.py <BENCH_kernels.json>
"""
import json
import sys

MIN_MAC_SPEEDUP = 1.5
MIN_PACK_RATIO = 3.5


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        data = json.load(f)

    failures = []

    if not data.get("bitwise_identical", False):
        failures.append("cross-level kernel outputs were not bitwise identical")

    ratio = data.get("pack", {}).get("ratio", 0.0)
    if ratio < MIN_PACK_RATIO:
        failures.append(
            f"genotype packing ratio {ratio:.2f}x < required {MIN_PACK_RATIO}x"
        )
    else:
        print(f"[kernel-smoke] packing ratio {ratio:.2f}x >= {MIN_PACK_RATIO}x")

    levels = data.get("levels", {})
    optimized = data.get("optimized", False)
    sanitized = data.get("sanitized", False)
    if "avx2" not in levels:
        print("[kernel-smoke] AVX2 unavailable on this host; speedup gate skipped")
    elif not optimized or sanitized:
        print(
            "[kernel-smoke] non-timing build (optimized=%s sanitized=%s); "
            "speedup gate skipped" % (optimized, sanitized)
        )
    else:
        speedup = levels["avx2"].get("mac_speedup", 0.0)
        if speedup < MIN_MAC_SPEEDUP:
            failures.append(
                f"AVX2 MAC speedup {speedup:.2f}x < required {MIN_MAC_SPEEDUP}x"
            )
        else:
            print(
                f"[kernel-smoke] AVX2 MAC speedup {speedup:.2f}x >= "
                f"{MIN_MAC_SPEEDUP}x"
            )

    for failure in failures:
        print(f"[kernel-smoke] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
