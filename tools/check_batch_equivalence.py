#!/usr/bin/env python3
"""Asserts two sparkscore run-metrics JSON files reached identical results.

Used by the bench_smoke ctest: the same workload is run at two different
resampling batch sizes, each writing a metrics artifact; the resampling
drivers fold an FNV-1a hash of every ResamplingResult (observed statistic
bits + exceedance counts) into the `resampling.result_hash` counter, so
equal counters mean bitwise-identical p-values regardless of how the
replicates were scheduled.

Usage: check_batch_equivalence.py <metrics_a.json> <metrics_b.json>

Stdlib-only; exits non-zero with a diagnostic on the first discrepancy.
"""

import json
import sys

REQUIRED_COUNTERS = ("resampling.result_hash", "resampling.replicates")


def load_counters(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        raise SystemExit(f"{path}: no 'counters' object in metrics JSON")
    for key in REQUIRED_COUNTERS:
        if key not in counters:
            raise SystemExit(f"{path}: counter '{key}' missing "
                             "(did the run execute any resampling?)")
    return counters


def main(argv):
    if len(argv) != 3:
        raise SystemExit(__doc__)
    a_path, b_path = argv[1], argv[2]
    a, b = load_counters(a_path), load_counters(b_path)

    if a["resampling.replicates"] <= 0:
        raise SystemExit(f"{a_path}: resampling.replicates is 0 — the "
                         "equivalence check would be vacuous")
    for key in REQUIRED_COUNTERS:
        if a[key] != b[key]:
            raise SystemExit(
                f"counter '{key}' differs: {a[key]} ({a_path}) vs "
                f"{b[key]} ({b_path}) — batched resampling is no longer "
                "bitwise invariant to the batch size")
    print(f"batch equivalence OK: {a['resampling.replicates']} replicates, "
          f"result hash {a['resampling.result_hash']}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
