# Driver for the bench_pvalue_smoke ctest: runs the adaptive p-value
# bench at reduced scale, writing a BENCH_pvalue.json datapoint, then
# gates on it with check_pvalue_savings.py (>= 10x replicate savings,
# zero classification disagreements, equivalence tolerances hold). All
# gated quantities are deterministic for the fixed seed, so this gate
# has no host-speed exemptions.
# Invoked as:
#   cmake -DBENCH=<bench_pvalue bin> -DPYTHON=<python3>
#         -DCHECK=<check_pvalue_savings.py> -DOUT_DIR=<dir>
#         -P bench_pvalue_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(datapoint "${OUT_DIR}/BENCH_pvalue.json")

execute_process(
  COMMAND "${BENCH}" "patients=300" "snps=600" "sets=40" "reps=600"
          "threshold=0.2" "out=${datapoint}"
  RESULT_VARIABLE run_result
  OUTPUT_QUIET
)
if(NOT run_result EQUAL 0)
  message(FATAL_ERROR "bench_pvalue failed (exit ${run_result})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}" "${datapoint}"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "p-value savings/equivalence gate failed (exit ${check_result})")
endif()
