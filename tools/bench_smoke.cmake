# Driver for the bench_smoke ctest: runs bench_caching twice at tiny
# scale — once with per-replicate scheduling (batch=1), once batched
# (batch=64) — and asserts via the run-metrics counters that both reached
# bitwise-identical resampling results (`resampling.result_hash`); then a
# third constrained-budget run in the paper-faithful cost regime, checked
# by check_spill_benefit.py (reload-from-spill must beat recompute).
# Invoked as:
#   cmake -DBENCH=<bench_caching bin> -DPYTHON=<python3>
#         -DCHECK=<check_batch_equivalence.py>
#         -DCHECK_SPILL=<check_spill_benefit.py> -DOUT_DIR=<dir>
#         -P bench_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(scale "snps_small=80" "snps_large=160" "patients=30" "reps=1" "faithful=0")

foreach(batch 1 64)
  set(metrics_file "${OUT_DIR}/bench_smoke.batch${batch}.metrics.json")
  execute_process(
    COMMAND "${BENCH}" ${scale} "batch=${batch}" "metrics=${metrics_file}"
    RESULT_VARIABLE run_result
    OUTPUT_QUIET
  )
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "bench_caching batch=${batch} failed (exit ${run_result})")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}"
          "${OUT_DIR}/bench_smoke.batch1.metrics.json"
          "${OUT_DIR}/bench_smoke.batch64.metrics.json"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "batch=1 and batch=64 runs disagree (exit ${check_result})")
endif()

# Third run: constrained budget only (mode=budget), paper-faithful scores,
# enough patients that recomputing a U partition is clearly costlier than
# reloading its spilled bytes. batch=4 over 40 iterations gives ten engine
# passes, so spilled partitions are reloaded many times.
set(spill_metrics "${OUT_DIR}/bench_smoke.spill.metrics.json")
set(spill_stdout "${OUT_DIR}/bench_smoke.spill.stdout.txt")
execute_process(
  COMMAND "${BENCH}" "mode=budget" "faithful=1" "patients=120" "snps_small=80"
          "budget_iters=40" "batch=4" "reps=1" "metrics=${spill_metrics}"
  RESULT_VARIABLE spill_result
  OUTPUT_FILE "${spill_stdout}"
)
if(NOT spill_result EQUAL 0)
  message(FATAL_ERROR "bench_caching mode=budget failed (exit ${spill_result})")
endif()
execute_process(
  COMMAND "${PYTHON}" "${CHECK_SPILL}" "${spill_metrics}" "${spill_stdout}"
  RESULT_VARIABLE spill_check
)
if(NOT spill_check EQUAL 0)
  message(FATAL_ERROR "spill tier did not beat lineage recompute (exit ${spill_check})")
endif()
