# Driver for the bench_smoke ctest: runs bench_caching twice at tiny
# scale — once with per-replicate scheduling (batch=1), once batched
# (batch=64) — and asserts via the run-metrics counters that both reached
# bitwise-identical resampling results (`resampling.result_hash`).
# Invoked as:
#   cmake -DBENCH=<bench_caching bin> -DPYTHON=<python3>
#         -DCHECK=<check_batch_equivalence.py> -DOUT_DIR=<dir>
#         -P bench_smoke.cmake
file(MAKE_DIRECTORY "${OUT_DIR}")
set(scale "snps_small=80" "snps_large=160" "patients=30" "reps=1" "faithful=0")

foreach(batch 1 64)
  set(metrics_file "${OUT_DIR}/bench_smoke.batch${batch}.metrics.json")
  execute_process(
    COMMAND "${BENCH}" ${scale} "batch=${batch}" "metrics=${metrics_file}"
    RESULT_VARIABLE run_result
    OUTPUT_QUIET
  )
  if(NOT run_result EQUAL 0)
    message(FATAL_ERROR "bench_caching batch=${batch} failed (exit ${run_result})")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECK}"
          "${OUT_DIR}/bench_smoke.batch1.metrics.json"
          "${OUT_DIR}/bench_smoke.batch64.metrics.json"
  RESULT_VARIABLE check_result
)
if(NOT check_result EQUAL 0)
  message(FATAL_ERROR "batch=1 and batch=64 runs disagree (exit ${check_result})")
endif()
