# Empty dependencies file for gene_annotation_study.
# This may be replaced when dependencies are built.
