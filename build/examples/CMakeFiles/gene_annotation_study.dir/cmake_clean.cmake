file(REMOVE_RECURSE
  "CMakeFiles/gene_annotation_study.dir/gene_annotation_study.cpp.o"
  "CMakeFiles/gene_annotation_study.dir/gene_annotation_study.cpp.o.d"
  "gene_annotation_study"
  "gene_annotation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_annotation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
