file(REMOVE_RECURSE
  "CMakeFiles/variant_scan.dir/variant_scan.cpp.o"
  "CMakeFiles/variant_scan.dir/variant_scan.cpp.o.d"
  "variant_scan"
  "variant_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
