# Empty compiler generated dependencies file for variant_scan.
# This may be replaced when dependencies are built.
