file(REMOVE_RECURSE
  "CMakeFiles/eqtl_study.dir/eqtl_study.cpp.o"
  "CMakeFiles/eqtl_study.dir/eqtl_study.cpp.o.d"
  "eqtl_study"
  "eqtl_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eqtl_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
