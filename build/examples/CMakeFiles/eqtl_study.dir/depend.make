# Empty dependencies file for eqtl_study.
# This may be replaced when dependencies are built.
