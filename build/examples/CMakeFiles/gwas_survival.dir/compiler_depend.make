# Empty compiler generated dependencies file for gwas_survival.
# This may be replaced when dependencies are built.
