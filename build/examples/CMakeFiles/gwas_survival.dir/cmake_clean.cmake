file(REMOVE_RECURSE
  "CMakeFiles/gwas_survival.dir/gwas_survival.cpp.o"
  "CMakeFiles/gwas_survival.dir/gwas_survival.cpp.o.d"
  "gwas_survival"
  "gwas_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gwas_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
