# Empty compiler generated dependencies file for cluster_failover.
# This may be replaced when dependencies are built.
