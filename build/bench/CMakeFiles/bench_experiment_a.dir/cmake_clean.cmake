file(REMOVE_RECURSE
  "CMakeFiles/bench_experiment_a.dir/bench_experiment_a.cpp.o"
  "CMakeFiles/bench_experiment_a.dir/bench_experiment_a.cpp.o.d"
  "bench_experiment_a"
  "bench_experiment_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_experiment_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
