# Empty compiler generated dependencies file for bench_experiment_a.
# This may be replaced when dependencies are built.
