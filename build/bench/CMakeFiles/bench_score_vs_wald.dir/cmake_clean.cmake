file(REMOVE_RECURSE
  "CMakeFiles/bench_score_vs_wald.dir/bench_score_vs_wald.cpp.o"
  "CMakeFiles/bench_score_vs_wald.dir/bench_score_vs_wald.cpp.o.d"
  "bench_score_vs_wald"
  "bench_score_vs_wald.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_score_vs_wald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
