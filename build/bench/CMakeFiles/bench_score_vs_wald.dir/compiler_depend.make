# Empty compiler generated dependencies file for bench_score_vs_wald.
# This may be replaced when dependencies are built.
