# Empty dependencies file for core_variant_scan_test.
# This may be replaced when dependencies are built.
