file(REMOVE_RECURSE
  "CMakeFiles/core_variant_scan_test.dir/core/variant_scan_test.cpp.o"
  "CMakeFiles/core_variant_scan_test.dir/core/variant_scan_test.cpp.o.d"
  "core_variant_scan_test"
  "core_variant_scan_test.pdb"
  "core_variant_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_variant_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
