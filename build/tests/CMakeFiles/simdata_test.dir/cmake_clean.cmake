file(REMOVE_RECURSE
  "CMakeFiles/simdata_test.dir/simdata/generator_test.cpp.o"
  "CMakeFiles/simdata_test.dir/simdata/generator_test.cpp.o.d"
  "CMakeFiles/simdata_test.dir/simdata/text_format_test.cpp.o"
  "CMakeFiles/simdata_test.dir/simdata/text_format_test.cpp.o.d"
  "simdata_test"
  "simdata_test.pdb"
  "simdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
