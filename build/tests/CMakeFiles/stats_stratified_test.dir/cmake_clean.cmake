file(REMOVE_RECURSE
  "CMakeFiles/stats_stratified_test.dir/stats/stratified_cox_test.cpp.o"
  "CMakeFiles/stats_stratified_test.dir/stats/stratified_cox_test.cpp.o.d"
  "stats_stratified_test"
  "stats_stratified_test.pdb"
  "stats_stratified_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_stratified_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
