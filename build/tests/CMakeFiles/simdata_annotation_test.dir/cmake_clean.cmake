file(REMOVE_RECURSE
  "CMakeFiles/simdata_annotation_test.dir/simdata/annotation_test.cpp.o"
  "CMakeFiles/simdata_annotation_test.dir/simdata/annotation_test.cpp.o.d"
  "simdata_annotation_test"
  "simdata_annotation_test.pdb"
  "simdata_annotation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdata_annotation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
