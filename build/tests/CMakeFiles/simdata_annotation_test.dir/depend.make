# Empty dependencies file for simdata_annotation_test.
# This may be replaced when dependencies are built.
