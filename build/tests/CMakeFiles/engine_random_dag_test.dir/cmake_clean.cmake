file(REMOVE_RECURSE
  "CMakeFiles/engine_random_dag_test.dir/engine/random_dag_test.cpp.o"
  "CMakeFiles/engine_random_dag_test.dir/engine/random_dag_test.cpp.o.d"
  "engine_random_dag_test"
  "engine_random_dag_test.pdb"
  "engine_random_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_random_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
