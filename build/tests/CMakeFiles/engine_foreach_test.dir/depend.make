# Empty dependencies file for engine_foreach_test.
# This may be replaced when dependencies are built.
