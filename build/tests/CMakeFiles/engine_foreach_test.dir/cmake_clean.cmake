file(REMOVE_RECURSE
  "CMakeFiles/engine_foreach_test.dir/engine/foreach_countby_test.cpp.o"
  "CMakeFiles/engine_foreach_test.dir/engine/foreach_countby_test.cpp.o.d"
  "engine_foreach_test"
  "engine_foreach_test.pdb"
  "engine_foreach_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_foreach_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
