file(REMOVE_RECURSE
  "CMakeFiles/engine_core_test.dir/engine/cache_test.cpp.o"
  "CMakeFiles/engine_core_test.dir/engine/cache_test.cpp.o.d"
  "CMakeFiles/engine_core_test.dir/engine/dataset_test.cpp.o"
  "CMakeFiles/engine_core_test.dir/engine/dataset_test.cpp.o.d"
  "engine_core_test"
  "engine_core_test.pdb"
  "engine_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
