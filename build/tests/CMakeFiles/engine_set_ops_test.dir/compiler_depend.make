# Empty compiler generated dependencies file for engine_set_ops_test.
# This may be replaced when dependencies are built.
