# Empty compiler generated dependencies file for stats_models_test.
# This may be replaced when dependencies are built.
