file(REMOVE_RECURSE
  "CMakeFiles/stats_models_test.dir/stats/models_test.cpp.o"
  "CMakeFiles/stats_models_test.dir/stats/models_test.cpp.o.d"
  "CMakeFiles/stats_models_test.dir/stats/skat_test.cpp.o"
  "CMakeFiles/stats_models_test.dir/stats/skat_test.cpp.o.d"
  "stats_models_test"
  "stats_models_test.pdb"
  "stats_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
