# Empty compiler generated dependencies file for stats_linalg_test.
# This may be replaced when dependencies are built.
