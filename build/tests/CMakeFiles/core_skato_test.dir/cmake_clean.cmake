file(REMOVE_RECURSE
  "CMakeFiles/core_skato_test.dir/core/skato_test.cpp.o"
  "CMakeFiles/core_skato_test.dir/core/skato_test.cpp.o.d"
  "core_skato_test"
  "core_skato_test.pdb"
  "core_skato_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_skato_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
