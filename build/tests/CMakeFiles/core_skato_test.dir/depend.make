# Empty dependencies file for core_skato_test.
# This may be replaced when dependencies are built.
