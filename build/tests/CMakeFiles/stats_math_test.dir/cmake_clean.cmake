file(REMOVE_RECURSE
  "CMakeFiles/stats_math_test.dir/stats/distributions_math_test.cpp.o"
  "CMakeFiles/stats_math_test.dir/stats/distributions_math_test.cpp.o.d"
  "CMakeFiles/stats_math_test.dir/stats/wald_test.cpp.o"
  "CMakeFiles/stats_math_test.dir/stats/wald_test.cpp.o.d"
  "stats_math_test"
  "stats_math_test.pdb"
  "stats_math_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_math_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
