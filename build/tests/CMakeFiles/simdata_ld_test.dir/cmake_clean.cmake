file(REMOVE_RECURSE
  "CMakeFiles/simdata_ld_test.dir/simdata/annotation_format_test.cpp.o"
  "CMakeFiles/simdata_ld_test.dir/simdata/annotation_format_test.cpp.o.d"
  "CMakeFiles/simdata_ld_test.dir/simdata/ld_test.cpp.o"
  "CMakeFiles/simdata_ld_test.dir/simdata/ld_test.cpp.o.d"
  "simdata_ld_test"
  "simdata_ld_test.pdb"
  "simdata_ld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simdata_ld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
