
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ss_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ss_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ss_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/ss_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/ss_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
