file(REMOVE_RECURSE
  "CMakeFiles/core_resampling_test.dir/core/resampling_methods_test.cpp.o"
  "CMakeFiles/core_resampling_test.dir/core/resampling_methods_test.cpp.o.d"
  "core_resampling_test"
  "core_resampling_test.pdb"
  "core_resampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_resampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
