# Empty compiler generated dependencies file for core_resampling_test.
# This may be replaced when dependencies are built.
