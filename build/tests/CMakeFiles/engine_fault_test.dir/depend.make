# Empty dependencies file for engine_fault_test.
# This may be replaced when dependencies are built.
