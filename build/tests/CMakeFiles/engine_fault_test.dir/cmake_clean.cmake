file(REMOVE_RECURSE
  "CMakeFiles/engine_fault_test.dir/engine/fault_tolerance_test.cpp.o"
  "CMakeFiles/engine_fault_test.dir/engine/fault_tolerance_test.cpp.o.d"
  "engine_fault_test"
  "engine_fault_test.pdb"
  "engine_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
