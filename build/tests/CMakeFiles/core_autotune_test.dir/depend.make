# Empty dependencies file for core_autotune_test.
# This may be replaced when dependencies are built.
