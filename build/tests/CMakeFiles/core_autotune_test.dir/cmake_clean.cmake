file(REMOVE_RECURSE
  "CMakeFiles/core_autotune_test.dir/core/autotune_test.cpp.o"
  "CMakeFiles/core_autotune_test.dir/core/autotune_test.cpp.o.d"
  "core_autotune_test"
  "core_autotune_test.pdb"
  "core_autotune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_autotune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
