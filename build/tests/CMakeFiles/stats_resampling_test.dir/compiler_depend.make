# Empty compiler generated dependencies file for stats_resampling_test.
# This may be replaced when dependencies are built.
