file(REMOVE_RECURSE
  "CMakeFiles/stats_resampling_test.dir/stats/pvalue_test.cpp.o"
  "CMakeFiles/stats_resampling_test.dir/stats/pvalue_test.cpp.o.d"
  "CMakeFiles/stats_resampling_test.dir/stats/resampling_test.cpp.o"
  "CMakeFiles/stats_resampling_test.dir/stats/resampling_test.cpp.o.d"
  "stats_resampling_test"
  "stats_resampling_test.pdb"
  "stats_resampling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_resampling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
