file(REMOVE_RECURSE
  "CMakeFiles/support_util_test.dir/support/util_test.cpp.o"
  "CMakeFiles/support_util_test.dir/support/util_test.cpp.o.d"
  "support_util_test"
  "support_util_test.pdb"
  "support_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
