# Empty dependencies file for support_util_test.
# This may be replaced when dependencies are built.
