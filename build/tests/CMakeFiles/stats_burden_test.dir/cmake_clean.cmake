file(REMOVE_RECURSE
  "CMakeFiles/stats_burden_test.dir/stats/burden_wy_test.cpp.o"
  "CMakeFiles/stats_burden_test.dir/stats/burden_wy_test.cpp.o.d"
  "stats_burden_test"
  "stats_burden_test.pdb"
  "stats_burden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_burden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
