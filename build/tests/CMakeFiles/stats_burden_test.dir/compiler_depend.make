# Empty compiler generated dependencies file for stats_burden_test.
# This may be replaced when dependencies are built.
