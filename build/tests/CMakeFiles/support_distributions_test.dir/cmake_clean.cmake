file(REMOVE_RECURSE
  "CMakeFiles/support_distributions_test.dir/support/distributions_test.cpp.o"
  "CMakeFiles/support_distributions_test.dir/support/distributions_test.cpp.o.d"
  "support_distributions_test"
  "support_distributions_test.pdb"
  "support_distributions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_distributions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
