# Empty compiler generated dependencies file for support_distributions_test.
# This may be replaced when dependencies are built.
