# Empty dependencies file for ss_cluster.
# This may be replaced when dependencies are built.
