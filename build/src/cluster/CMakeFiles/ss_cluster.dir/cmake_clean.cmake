file(REMOVE_RECURSE
  "CMakeFiles/ss_cluster.dir/cost_model.cpp.o"
  "CMakeFiles/ss_cluster.dir/cost_model.cpp.o.d"
  "CMakeFiles/ss_cluster.dir/fault_injector.cpp.o"
  "CMakeFiles/ss_cluster.dir/fault_injector.cpp.o.d"
  "CMakeFiles/ss_cluster.dir/resource_manager.cpp.o"
  "CMakeFiles/ss_cluster.dir/resource_manager.cpp.o.d"
  "CMakeFiles/ss_cluster.dir/topology.cpp.o"
  "CMakeFiles/ss_cluster.dir/topology.cpp.o.d"
  "CMakeFiles/ss_cluster.dir/virtual_scheduler.cpp.o"
  "CMakeFiles/ss_cluster.dir/virtual_scheduler.cpp.o.d"
  "libss_cluster.a"
  "libss_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
