file(REMOVE_RECURSE
  "libss_cluster.a"
)
