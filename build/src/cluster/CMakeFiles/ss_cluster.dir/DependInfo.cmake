
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cost_model.cpp" "src/cluster/CMakeFiles/ss_cluster.dir/cost_model.cpp.o" "gcc" "src/cluster/CMakeFiles/ss_cluster.dir/cost_model.cpp.o.d"
  "/root/repo/src/cluster/fault_injector.cpp" "src/cluster/CMakeFiles/ss_cluster.dir/fault_injector.cpp.o" "gcc" "src/cluster/CMakeFiles/ss_cluster.dir/fault_injector.cpp.o.d"
  "/root/repo/src/cluster/resource_manager.cpp" "src/cluster/CMakeFiles/ss_cluster.dir/resource_manager.cpp.o" "gcc" "src/cluster/CMakeFiles/ss_cluster.dir/resource_manager.cpp.o.d"
  "/root/repo/src/cluster/topology.cpp" "src/cluster/CMakeFiles/ss_cluster.dir/topology.cpp.o" "gcc" "src/cluster/CMakeFiles/ss_cluster.dir/topology.cpp.o.d"
  "/root/repo/src/cluster/virtual_scheduler.cpp" "src/cluster/CMakeFiles/ss_cluster.dir/virtual_scheduler.cpp.o" "gcc" "src/cluster/CMakeFiles/ss_cluster.dir/virtual_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
