file(REMOVE_RECURSE
  "CMakeFiles/ss_support.dir/binary_io.cpp.o"
  "CMakeFiles/ss_support.dir/binary_io.cpp.o.d"
  "CMakeFiles/ss_support.dir/distributions.cpp.o"
  "CMakeFiles/ss_support.dir/distributions.cpp.o.d"
  "CMakeFiles/ss_support.dir/log.cpp.o"
  "CMakeFiles/ss_support.dir/log.cpp.o.d"
  "CMakeFiles/ss_support.dir/rng.cpp.o"
  "CMakeFiles/ss_support.dir/rng.cpp.o.d"
  "CMakeFiles/ss_support.dir/status.cpp.o"
  "CMakeFiles/ss_support.dir/status.cpp.o.d"
  "CMakeFiles/ss_support.dir/string_util.cpp.o"
  "CMakeFiles/ss_support.dir/string_util.cpp.o.d"
  "CMakeFiles/ss_support.dir/summary.cpp.o"
  "CMakeFiles/ss_support.dir/summary.cpp.o.d"
  "CMakeFiles/ss_support.dir/table.cpp.o"
  "CMakeFiles/ss_support.dir/table.cpp.o.d"
  "CMakeFiles/ss_support.dir/thread_pool.cpp.o"
  "CMakeFiles/ss_support.dir/thread_pool.cpp.o.d"
  "libss_support.a"
  "libss_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
