file(REMOVE_RECURSE
  "CMakeFiles/ss_stats.dir/burden.cpp.o"
  "CMakeFiles/ss_stats.dir/burden.cpp.o.d"
  "CMakeFiles/ss_stats.dir/covariates.cpp.o"
  "CMakeFiles/ss_stats.dir/covariates.cpp.o.d"
  "CMakeFiles/ss_stats.dir/cox_score.cpp.o"
  "CMakeFiles/ss_stats.dir/cox_score.cpp.o.d"
  "CMakeFiles/ss_stats.dir/distributions_math.cpp.o"
  "CMakeFiles/ss_stats.dir/distributions_math.cpp.o.d"
  "CMakeFiles/ss_stats.dir/linalg.cpp.o"
  "CMakeFiles/ss_stats.dir/linalg.cpp.o.d"
  "CMakeFiles/ss_stats.dir/linear_score.cpp.o"
  "CMakeFiles/ss_stats.dir/linear_score.cpp.o.d"
  "CMakeFiles/ss_stats.dir/logistic_score.cpp.o"
  "CMakeFiles/ss_stats.dir/logistic_score.cpp.o.d"
  "CMakeFiles/ss_stats.dir/pvalue.cpp.o"
  "CMakeFiles/ss_stats.dir/pvalue.cpp.o.d"
  "CMakeFiles/ss_stats.dir/resampling.cpp.o"
  "CMakeFiles/ss_stats.dir/resampling.cpp.o.d"
  "CMakeFiles/ss_stats.dir/score_engine.cpp.o"
  "CMakeFiles/ss_stats.dir/score_engine.cpp.o.d"
  "CMakeFiles/ss_stats.dir/skat.cpp.o"
  "CMakeFiles/ss_stats.dir/skat.cpp.o.d"
  "CMakeFiles/ss_stats.dir/survival.cpp.o"
  "CMakeFiles/ss_stats.dir/survival.cpp.o.d"
  "CMakeFiles/ss_stats.dir/wald.cpp.o"
  "CMakeFiles/ss_stats.dir/wald.cpp.o.d"
  "CMakeFiles/ss_stats.dir/westfall_young.cpp.o"
  "CMakeFiles/ss_stats.dir/westfall_young.cpp.o.d"
  "libss_stats.a"
  "libss_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
