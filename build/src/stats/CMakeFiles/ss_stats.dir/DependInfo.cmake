
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/burden.cpp" "src/stats/CMakeFiles/ss_stats.dir/burden.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/burden.cpp.o.d"
  "/root/repo/src/stats/covariates.cpp" "src/stats/CMakeFiles/ss_stats.dir/covariates.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/covariates.cpp.o.d"
  "/root/repo/src/stats/cox_score.cpp" "src/stats/CMakeFiles/ss_stats.dir/cox_score.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/cox_score.cpp.o.d"
  "/root/repo/src/stats/distributions_math.cpp" "src/stats/CMakeFiles/ss_stats.dir/distributions_math.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/distributions_math.cpp.o.d"
  "/root/repo/src/stats/linalg.cpp" "src/stats/CMakeFiles/ss_stats.dir/linalg.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/linalg.cpp.o.d"
  "/root/repo/src/stats/linear_score.cpp" "src/stats/CMakeFiles/ss_stats.dir/linear_score.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/linear_score.cpp.o.d"
  "/root/repo/src/stats/logistic_score.cpp" "src/stats/CMakeFiles/ss_stats.dir/logistic_score.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/logistic_score.cpp.o.d"
  "/root/repo/src/stats/pvalue.cpp" "src/stats/CMakeFiles/ss_stats.dir/pvalue.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/pvalue.cpp.o.d"
  "/root/repo/src/stats/resampling.cpp" "src/stats/CMakeFiles/ss_stats.dir/resampling.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/resampling.cpp.o.d"
  "/root/repo/src/stats/score_engine.cpp" "src/stats/CMakeFiles/ss_stats.dir/score_engine.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/score_engine.cpp.o.d"
  "/root/repo/src/stats/skat.cpp" "src/stats/CMakeFiles/ss_stats.dir/skat.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/skat.cpp.o.d"
  "/root/repo/src/stats/survival.cpp" "src/stats/CMakeFiles/ss_stats.dir/survival.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/survival.cpp.o.d"
  "/root/repo/src/stats/wald.cpp" "src/stats/CMakeFiles/ss_stats.dir/wald.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/wald.cpp.o.d"
  "/root/repo/src/stats/westfall_young.cpp" "src/stats/CMakeFiles/ss_stats.dir/westfall_young.cpp.o" "gcc" "src/stats/CMakeFiles/ss_stats.dir/westfall_young.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
