file(REMOVE_RECURSE
  "libss_simdata.a"
)
