
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simdata/annotation.cpp" "src/simdata/CMakeFiles/ss_simdata.dir/annotation.cpp.o" "gcc" "src/simdata/CMakeFiles/ss_simdata.dir/annotation.cpp.o.d"
  "/root/repo/src/simdata/dfs_writer.cpp" "src/simdata/CMakeFiles/ss_simdata.dir/dfs_writer.cpp.o" "gcc" "src/simdata/CMakeFiles/ss_simdata.dir/dfs_writer.cpp.o.d"
  "/root/repo/src/simdata/generator.cpp" "src/simdata/CMakeFiles/ss_simdata.dir/generator.cpp.o" "gcc" "src/simdata/CMakeFiles/ss_simdata.dir/generator.cpp.o.d"
  "/root/repo/src/simdata/text_format.cpp" "src/simdata/CMakeFiles/ss_simdata.dir/text_format.cpp.o" "gcc" "src/simdata/CMakeFiles/ss_simdata.dir/text_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/ss_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
