# Empty dependencies file for ss_simdata.
# This may be replaced when dependencies are built.
