file(REMOVE_RECURSE
  "CMakeFiles/ss_simdata.dir/annotation.cpp.o"
  "CMakeFiles/ss_simdata.dir/annotation.cpp.o.d"
  "CMakeFiles/ss_simdata.dir/dfs_writer.cpp.o"
  "CMakeFiles/ss_simdata.dir/dfs_writer.cpp.o.d"
  "CMakeFiles/ss_simdata.dir/generator.cpp.o"
  "CMakeFiles/ss_simdata.dir/generator.cpp.o.d"
  "CMakeFiles/ss_simdata.dir/text_format.cpp.o"
  "CMakeFiles/ss_simdata.dir/text_format.cpp.o.d"
  "libss_simdata.a"
  "libss_simdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_simdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
