file(REMOVE_RECURSE
  "CMakeFiles/ss_core.dir/autotune.cpp.o"
  "CMakeFiles/ss_core.dir/autotune.cpp.o.d"
  "CMakeFiles/ss_core.dir/pipeline.cpp.o"
  "CMakeFiles/ss_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ss_core.dir/report.cpp.o"
  "CMakeFiles/ss_core.dir/report.cpp.o.d"
  "CMakeFiles/ss_core.dir/resampling_methods.cpp.o"
  "CMakeFiles/ss_core.dir/resampling_methods.cpp.o.d"
  "CMakeFiles/ss_core.dir/variant_scan.cpp.o"
  "CMakeFiles/ss_core.dir/variant_scan.cpp.o.d"
  "libss_core.a"
  "libss_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
