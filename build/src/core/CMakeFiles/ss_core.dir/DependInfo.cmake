
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autotune.cpp" "src/core/CMakeFiles/ss_core.dir/autotune.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/autotune.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/ss_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/ss_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/report.cpp.o.d"
  "/root/repo/src/core/resampling_methods.cpp" "src/core/CMakeFiles/ss_core.dir/resampling_methods.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/resampling_methods.cpp.o.d"
  "/root/repo/src/core/variant_scan.cpp" "src/core/CMakeFiles/ss_core.dir/variant_scan.cpp.o" "gcc" "src/core/CMakeFiles/ss_core.dir/variant_scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ss_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ss_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simdata/CMakeFiles/ss_simdata.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ss_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/ss_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
