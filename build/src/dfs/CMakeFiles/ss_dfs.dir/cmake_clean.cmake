file(REMOVE_RECURSE
  "CMakeFiles/ss_dfs.dir/block_store.cpp.o"
  "CMakeFiles/ss_dfs.dir/block_store.cpp.o.d"
  "CMakeFiles/ss_dfs.dir/dfs.cpp.o"
  "CMakeFiles/ss_dfs.dir/dfs.cpp.o.d"
  "CMakeFiles/ss_dfs.dir/namenode.cpp.o"
  "CMakeFiles/ss_dfs.dir/namenode.cpp.o.d"
  "libss_dfs.a"
  "libss_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
