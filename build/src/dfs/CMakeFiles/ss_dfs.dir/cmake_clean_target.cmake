file(REMOVE_RECURSE
  "libss_dfs.a"
)
