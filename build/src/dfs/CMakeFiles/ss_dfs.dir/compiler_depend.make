# Empty compiler generated dependencies file for ss_dfs.
# This may be replaced when dependencies are built.
