
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/block_store.cpp" "src/dfs/CMakeFiles/ss_dfs.dir/block_store.cpp.o" "gcc" "src/dfs/CMakeFiles/ss_dfs.dir/block_store.cpp.o.d"
  "/root/repo/src/dfs/dfs.cpp" "src/dfs/CMakeFiles/ss_dfs.dir/dfs.cpp.o" "gcc" "src/dfs/CMakeFiles/ss_dfs.dir/dfs.cpp.o.d"
  "/root/repo/src/dfs/namenode.cpp" "src/dfs/CMakeFiles/ss_dfs.dir/namenode.cpp.o" "gcc" "src/dfs/CMakeFiles/ss_dfs.dir/namenode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
