file(REMOVE_RECURSE
  "CMakeFiles/ss_baseline.dir/serial_skat.cpp.o"
  "CMakeFiles/ss_baseline.dir/serial_skat.cpp.o.d"
  "libss_baseline.a"
  "libss_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
