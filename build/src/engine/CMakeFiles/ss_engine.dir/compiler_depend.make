# Empty compiler generated dependencies file for ss_engine.
# This may be replaced when dependencies are built.
