file(REMOVE_RECURSE
  "CMakeFiles/ss_engine.dir/cache_manager.cpp.o"
  "CMakeFiles/ss_engine.dir/cache_manager.cpp.o.d"
  "CMakeFiles/ss_engine.dir/context.cpp.o"
  "CMakeFiles/ss_engine.dir/context.cpp.o.d"
  "CMakeFiles/ss_engine.dir/metrics.cpp.o"
  "CMakeFiles/ss_engine.dir/metrics.cpp.o.d"
  "libss_engine.a"
  "libss_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
