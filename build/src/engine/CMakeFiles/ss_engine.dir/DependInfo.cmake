
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cache_manager.cpp" "src/engine/CMakeFiles/ss_engine.dir/cache_manager.cpp.o" "gcc" "src/engine/CMakeFiles/ss_engine.dir/cache_manager.cpp.o.d"
  "/root/repo/src/engine/context.cpp" "src/engine/CMakeFiles/ss_engine.dir/context.cpp.o" "gcc" "src/engine/CMakeFiles/ss_engine.dir/context.cpp.o.d"
  "/root/repo/src/engine/metrics.cpp" "src/engine/CMakeFiles/ss_engine.dir/metrics.cpp.o" "gcc" "src/engine/CMakeFiles/ss_engine.dir/metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ss_support.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/ss_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ss_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
