file(REMOVE_RECURSE
  "libss_engine.a"
)
