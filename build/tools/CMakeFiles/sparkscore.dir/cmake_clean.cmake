file(REMOVE_RECURSE
  "CMakeFiles/sparkscore.dir/sparkscore_cli.cpp.o"
  "CMakeFiles/sparkscore.dir/sparkscore_cli.cpp.o.d"
  "sparkscore"
  "sparkscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparkscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
