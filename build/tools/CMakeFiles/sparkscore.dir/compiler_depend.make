# Empty compiler generated dependencies file for sparkscore.
# This may be replaced when dependencies are built.
